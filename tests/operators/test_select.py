"""Unit tests for the five oblivious SELECT algorithms."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.operators import (
    Comparison,
    compact_select,
    continuous_select,
    hash_select,
    large_select,
    materialize_index_range,
    naive_select,
    small_select,
)
from repro.storage import FlatStorage, IndexedStorage, Schema


@pytest.fixture
def table(fast_enclave: Enclave, kv_schema: Schema) -> FlatStorage:
    """40 rows with keys 0..39 in key order (contiguous range matches)."""
    table = FlatStorage(fast_enclave, kv_schema, 48)
    for key in range(40):
        table.fast_insert((key, f"v{key}"))
    return table


LOW_PRED = Comparison("key", "<", 8)  # 8 contiguous matches
EXPECTED_LOW = [(k, f"v{k}") for k in range(8)]


class TestNaiveSelect:
    def test_correct(self, table: FlatStorage) -> None:
        out = naive_select(table, LOW_PRED, 8, rng=random.Random(1))
        assert sorted(out.rows()) == EXPECTED_LOW
        assert out.used_rows == 8

    def test_empty_output(self, table: FlatStorage) -> None:
        out = naive_select(table, Comparison("key", "=", -1), 0, rng=random.Random(1))
        assert out.rows() == []

    def test_one_oram_op_per_row(self, table: FlatStorage, fast_enclave: Enclave) -> None:
        before = fast_enclave.cost.oram_accesses
        out = naive_select(table, LOW_PRED, 8, rng=random.Random(1))
        delta = fast_enclave.cost.oram_accesses - before
        # One op per scanned row plus the final copy-out of |R| blocks.
        assert delta == table.capacity + 8
        out.free()


class TestSmallSelect:
    @pytest.mark.parametrize("buffer_rows", [1, 3, 8, 100])
    def test_correct_any_buffer(self, table: FlatStorage, buffer_rows: int) -> None:
        out = small_select(table, LOW_PRED, 8, buffer_rows)
        assert sorted(out.rows()) == EXPECTED_LOW

    def test_pass_count_matches_formula(self, table: FlatStorage, fast_enclave: Enclave) -> None:
        """ceil(|R|/S) passes, each reading the whole input table."""
        before = fast_enclave.cost.untrusted_reads
        out = small_select(table, LOW_PRED, 8, buffer_rows=3)
        reads = fast_enclave.cost.untrusted_reads - before
        passes = (8 + 2) // 3  # ceil(8/3) = 3
        assert reads == passes * table.capacity
        out.free()

    def test_scattered_matches(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = FlatStorage(fast_enclave, kv_schema, 32)
        for key in range(30):
            table.fast_insert((key, "x"))
        predicate = Comparison("key", "=", 7)
        out = small_select(table, predicate, 1, buffer_rows=4)
        assert out.rows() == [(7, "x")]

    def test_invalid_buffer_rejected(self, table: FlatStorage) -> None:
        with pytest.raises(ValueError):
            small_select(table, LOW_PRED, 8, buffer_rows=0)


class TestLargeSelect:
    def test_correct(self, table: FlatStorage) -> None:
        predicate = Comparison("key", ">=", 5)
        out = large_select(table, predicate)
        assert sorted(out.rows()) == [(k, f"v{k}") for k in range(5, 40)]

    def test_output_capacity_equals_input(self, table: FlatStorage) -> None:
        out = large_select(table, LOW_PRED)
        assert out.capacity == table.capacity

    def test_uses_no_oblivious_memory(self, table: FlatStorage, fast_enclave: Enclave) -> None:
        before = fast_enclave.oblivious.peak_bytes
        large_select(table, LOW_PRED)
        assert fast_enclave.oblivious.peak_bytes == before


class TestContinuousSelect:
    def test_correct_prefix(self, table: FlatStorage) -> None:
        out = continuous_select(table, LOW_PRED, 8)
        assert sorted(out.rows()) == EXPECTED_LOW

    def test_correct_middle_segment(self, table: FlatStorage) -> None:
        predicate = Comparison("key", ">=", 10)
        from repro.operators import And

        segment = And(predicate, Comparison("key", "<", 25))
        out = continuous_select(table, segment, 15)
        assert sorted(out.rows()) == [(k, f"v{k}") for k in range(10, 25)]

    def test_single_pass(self, table: FlatStorage, fast_enclave: Enclave) -> None:
        before = fast_enclave.cost.untrusted_reads
        out = continuous_select(table, LOW_PRED, 8)
        # One read of each input block plus one read of each touched output
        # slot (the read-before-write dummy pattern).
        reads = fast_enclave.cost.untrusted_reads - before
        assert reads == 2 * table.capacity
        out.free()

    def test_zero_output(self, table: FlatStorage) -> None:
        out = continuous_select(table, Comparison("key", "=", -5), 0)
        assert out.rows() == []


class TestHashSelect:
    def test_correct(self, table: FlatStorage) -> None:
        out = hash_select(table, LOW_PRED, 8)
        assert sorted(out.rows()) == EXPECTED_LOW

    def test_scattered_matches(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = FlatStorage(fast_enclave, kv_schema, 64)
        for key in range(60):
            table.fast_insert((key, "x"))
        predicate = Comparison("key", "=", 31)
        out = hash_select(table, predicate, 1)
        assert out.rows() == [(31, "x")]

    def test_output_structure_size(self, table: FlatStorage) -> None:
        out = hash_select(table, LOW_PRED, 8)
        assert out.capacity == 8 * 5  # |R| buckets x 5 chain slots

    def test_fixed_accesses_per_row(self, table: FlatStorage, fast_enclave: Enclave) -> None:
        """10 output-slot touches per input row, selected or not."""
        before = fast_enclave.cost.untrusted_reads
        out = hash_select(table, LOW_PRED, 8)
        reads = fast_enclave.cost.untrusted_reads - before
        assert reads == table.capacity * (1 + 10)
        out.free()

    def test_dense_output(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        """Every row selected: placement must still succeed."""
        table = FlatStorage(fast_enclave, kv_schema, 32)
        for key in range(32):
            table.fast_insert((key, "x"))
        out = hash_select(table, Comparison("key", ">=", 0), 32)
        assert len(out.rows()) == 32


class TestCompactSelect:
    def test_correct_and_order_preserving(self, table: FlatStorage) -> None:
        out = compact_select(table, LOW_PRED, 8)
        assert out.capacity == 8
        assert out.rows() == EXPECTED_LOW  # input order, like Small's

    def test_scattered_matches(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        t = FlatStorage(fast_enclave, kv_schema, 32)
        for key in range(30):
            t.fast_insert((key, "x"))
        out = compact_select(t, Comparison("key", "=", 7), 1)
        assert out.rows() == [(7, "x")]

    def test_underestimate_keeps_first_matches(self, table: FlatStorage) -> None:
        """Planner promised 4 but 8 match: the first 4 in input order win,
        exactly like the buffered Small path."""
        out = compact_select(table, LOW_PRED, 4)
        assert out.rows() == EXPECTED_LOW[:4]

    def test_zero_output(self, table: FlatStorage) -> None:
        out = compact_select(table, Comparison("key", "=", -1), 0)
        assert out.rows() == []

    def test_trace_is_data_independent(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        traces = []
        for matches in ({0, 1, 2}, {17, 25, 31}):
            enclave = Enclave(cipher="null", keep_trace_events=True)
            t = FlatStorage(enclave, kv_schema, 32)
            for i in range(32):
                t.fast_insert((1 if i in matches else 1000 + i, "x"))
            enclave.trace.clear()
            compact_select(t, Comparison("key", "=", 1), 3)
            traces.append(enclave.trace)
        assert traces[0].matches(traces[1])

    def test_small_select_switches_in_multi_pass_regime(
        self, table: FlatStorage, fast_enclave: Enclave
    ) -> None:
        """With a 1-row buffer and 35 promised rows (35 passes > the
        compaction threshold), small_select routes to the compaction front
        — far fewer reads than 35 full scans — and stays correct."""
        predicate = Comparison("key", "<", 35)
        before = fast_enclave.cost.untrusted_reads
        out = small_select(table, predicate, 35, buffer_rows=1)
        reads = fast_enclave.cost.untrusted_reads - before
        assert out.rows() == [(k, f"v{k}") for k in range(35)]
        assert reads < 35 * table.capacity  # the multi-pass cost it avoided


class TestHashSelectCompactOutput:
    def test_tight_capacity_and_rows(self, table: FlatStorage) -> None:
        out = hash_select(table, LOW_PRED, 8, compact_output=True)
        assert out.capacity == 8  # |R|, not 5*|R|
        assert sorted(out.rows()) == EXPECTED_LOW
        assert out.used_rows == 8

    def test_fewer_matches_than_promised(self, table: FlatStorage) -> None:
        out = hash_select(table, Comparison("key", "<", 3), 8, compact_output=True)
        assert out.capacity == 8
        assert sorted(out.rows()) == [(k, f"v{k}") for k in range(3)]

    def test_zero_output(self, table: FlatStorage) -> None:
        out = hash_select(table, Comparison("key", "=", -1), 0, compact_output=True)
        assert out.rows() == []

    def test_trace_is_data_independent(self, kv_schema: Schema) -> None:
        traces = []
        for matches in ({1, 8, 15, 22}, {0, 3, 17, 23}):
            enclave = Enclave(cipher="null", keep_trace_events=True)
            t = FlatStorage(enclave, kv_schema, 24)
            for i in range(24):
                t.fast_insert((1 if i in matches else 1000 + i, "x"))
            enclave.trace.clear()
            hash_select(t, Comparison("key", "=", 1), 4, compact_output=True)
            traces.append(enclave.trace)
        assert traces[0].matches(traces[1])


class TestSelectionOverIndex:
    def test_materialize_range(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        index = IndexedStorage(
            fast_enclave, kv_schema, "key", 128, rng=random.Random(2)
        )
        for key in range(50):
            index.insert((key, f"v{key}"))
        segment = materialize_index_range(index, 10, 19)
        assert segment.capacity == 10
        assert sorted(segment.rows()) == [(k, f"v{k}") for k in range(10, 20)]

    def test_empty_range(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        index = IndexedStorage(
            fast_enclave, kv_schema, "key", 64, rng=random.Random(2)
        )
        index.insert((1, "x"))
        segment = materialize_index_range(index, 100, 200)
        assert segment.rows() == []

"""Unit tests for the randomized Shellsort (Section 4.3's cited speedup)."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.operators import is_sorted, randomized_shellsort, robust_shellsort
from repro.storage import FlatStorage, Schema, int_column

SCHEMA = Schema([int_column("x")])
KEY = lambda row: (row[0],)  # noqa: E731


def fill(enclave: Enclave, capacity: int, values: list[int]) -> FlatStorage:
    table = FlatStorage(enclave, SCHEMA, capacity)
    for value in values:
        table.fast_insert((value,))
    return table


class TestRandomizedShellsort:
    @pytest.mark.parametrize("trial", range(8))
    def test_sorts_random_inputs(self, fast_enclave: Enclave, trial: int) -> None:
        rng = random.Random(trial)
        values = [rng.randrange(1000) for _ in range(48)]
        table = fill(fast_enclave, 48, values)
        randomized_shellsort(table, KEY, rng=random.Random(trial + 50))
        assert is_sorted(table, KEY)
        reals = [table.read_row(i) for i in range(48)]
        assert [row[0] for row in reals if row is not None] == sorted(values)
        table.free()

    def test_dummies_sort_last(self, fast_enclave: Enclave) -> None:
        table = fill(fast_enclave, 16, [9, 1, 5])
        randomized_shellsort(table, KEY, rng=random.Random(1))
        rows = [table.read_row(i) for i in range(16)]
        assert [row[0] for row in rows[:3] if row] == [1, 5, 9]
        assert all(row is None for row in rows[3:])

    def test_trivial_sizes(self, fast_enclave: Enclave) -> None:
        empty = fill(fast_enclave, 1, [])
        randomized_shellsort(empty, KEY, rng=random.Random(1))
        single = fill(fast_enclave, 1, [5])
        randomized_shellsort(single, KEY, rng=random.Random(1))
        assert single.read_row(0) == (5,)

    def test_trace_data_independent(self) -> None:
        """The comparison schedule is drawn before seeing data: identical
        traces for different contents of equal size."""
        digests = []
        for data_seed in (1, 2):
            enclave = Enclave(cipher="null", keep_trace_events=True)
            rng = random.Random(data_seed)
            table = fill(enclave, 32, [rng.randrange(1000) for _ in range(32)])
            enclave.trace.clear()
            randomized_shellsort(table, KEY, rng=random.Random(42))
            digests.append(enclave.trace.digest())
        assert digests[0] == digests[1]

    def test_comparison_growth_below_bitonic(self, fast_enclave: Enclave) -> None:
        """The point of shellsort: O(n log n) comparisons vs bitonic's
        O(n log^2 n).  The constants favour bitonic at laptop sizes, so we
        assert the *growth rate* between two sizes is strictly smaller —
        the asymptotic claim itself."""
        from repro.operators import bitonic_sort

        def comparisons(sort_fn, n: int) -> int:
            rng = random.Random(n)
            table = fill(fast_enclave, n, [rng.randrange(10_000) for _ in range(n)])
            before = fast_enclave.cost.comparisons
            sort_fn(table)
            count = fast_enclave.cost.comparisons - before
            table.free()
            return count

        shell_growth = comparisons(
            lambda t: randomized_shellsort(t, KEY, rng=random.Random(1)), 256
        ) / comparisons(
            lambda t: randomized_shellsort(t, KEY, rng=random.Random(1)), 64
        )
        bitonic_growth = comparisons(lambda t: bitonic_sort(t, KEY), 256) / comparisons(
            lambda t: bitonic_sort(t, KEY), 64
        )
        assert shell_growth < bitonic_growth


class TestRobustShellsort:
    @pytest.mark.parametrize("trial", range(5))
    def test_always_sorted(self, fast_enclave: Enclave, trial: int) -> None:
        rng = random.Random(trial + 77)
        values = [rng.randrange(1000) for _ in range(64)]
        table = fill(fast_enclave, 64, values)  # power of two: fallback-safe
        robust_shellsort(table, KEY, rng=random.Random(trial))
        assert is_sorted(table, KEY)

    def test_fallback_path_sorts(self, fast_enclave: Enclave) -> None:
        """Force the fallback by allowing zero randomized attempts' worth
        of passes (max_attempts exhausted instantly on tiny pass count)."""
        values = [5, 3, 8, 1]
        table = fill(fast_enclave, 4, values)
        result = robust_shellsort(table, KEY, rng=random.Random(1), max_attempts=0)
        assert result is False  # fallback ran
        assert is_sorted(table, KEY)


class TestIsSorted:
    def test_detects_sorted_and_unsorted(self, fast_enclave: Enclave) -> None:
        table = fill(fast_enclave, 8, [1, 2, 3])
        assert is_sorted(table, KEY)
        table.write_row(0, (9,))
        assert not is_sorted(table, KEY)

    def test_fixed_scan_length(self, fast_enclave: Enclave) -> None:
        """Verification reads every block whether or not it finds disorder
        early — no early-exit side channel."""
        table = fill(fast_enclave, 8, [9, 1])  # disorder at the front
        before = fast_enclave.cost.untrusted_reads
        is_sorted(table, KEY)
        assert fast_enclave.cost.untrusted_reads - before == 8

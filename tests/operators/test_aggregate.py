"""Unit tests for aggregation, GROUP BY, and the fused operator."""

from __future__ import annotations

import pytest

from repro.enclave import Enclave, QueryError
from repro.operators import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    aggregate,
    group_by_aggregate,
)
from repro.storage import FlatStorage, Schema, int_column, str_column


@pytest.fixture
def table(fast_enclave: Enclave) -> FlatStorage:
    schema = Schema([int_column("g"), int_column("x"), str_column("s", 8)])
    table = FlatStorage(fast_enclave, schema, 32)
    for i in range(24):
        table.fast_insert((i % 3, i, f"s{i}"))
    return table


def spec(function: AggregateFunction, column: str | None = None) -> AggregateSpec:
    return AggregateSpec(function, column)


class TestAggregate:
    def test_count(self, table: FlatStorage) -> None:
        assert aggregate(table, [spec(AggregateFunction.COUNT)]) == (24,)

    def test_sum_min_max_avg(self, table: FlatStorage) -> None:
        values = list(range(24))
        result = aggregate(
            table,
            [
                spec(AggregateFunction.SUM, "x"),
                spec(AggregateFunction.MIN, "x"),
                spec(AggregateFunction.MAX, "x"),
                spec(AggregateFunction.AVG, "x"),
            ],
        )
        assert result[0] == sum(values)
        assert result[1] == 0
        assert result[2] == 23
        assert result[3] == pytest.approx(sum(values) / 24)

    def test_string_min_max(self, table: FlatStorage) -> None:
        result = aggregate(
            table,
            [spec(AggregateFunction.MIN, "s"), spec(AggregateFunction.MAX, "s")],
        )
        assert result == ("s0", "s9")

    def test_empty_table(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        empty = FlatStorage(fast_enclave, kv_schema, 8)
        assert aggregate(empty, [spec(AggregateFunction.COUNT)]) == (0,)
        assert aggregate(empty, [spec(AggregateFunction.AVG, "key")]) == (0.0,)

    def test_requires_specs(self, table: FlatStorage) -> None:
        with pytest.raises(QueryError):
            aggregate(table, [])

    def test_non_count_requires_column(self) -> None:
        with pytest.raises(QueryError):
            AggregateSpec(AggregateFunction.SUM)

    def test_single_pass(self, table: FlatStorage, fast_enclave: Enclave) -> None:
        before = fast_enclave.cost.untrusted_reads
        aggregate(table, [spec(AggregateFunction.SUM, "x")])
        assert fast_enclave.cost.untrusted_reads - before == table.capacity


class TestFusedSelectAggregate:
    def test_predicate_applied(self, table: FlatStorage) -> None:
        result = aggregate(
            table,
            [spec(AggregateFunction.COUNT), spec(AggregateFunction.SUM, "x")],
            predicate=Comparison("g", "=", 0),
        )
        members = [i for i in range(24) if i % 3 == 0]
        assert result == (len(members), float(sum(members)))

    def test_no_intermediate_table_created(
        self, table: FlatStorage, fast_enclave: Enclave
    ) -> None:
        """The fused operator writes nothing to untrusted memory."""
        before = fast_enclave.cost.untrusted_writes
        aggregate(
            table,
            [spec(AggregateFunction.COUNT)],
            predicate=Comparison("x", "<", 5),
        )
        assert fast_enclave.cost.untrusted_writes == before

    def test_cost_independent_of_selectivity(
        self, table: FlatStorage, fast_enclave: Enclave
    ) -> None:
        costs = []
        for predicate in (Comparison("x", "<", 0), Comparison("x", "<", 100)):
            before = fast_enclave.cost.block_ios
            aggregate(table, [spec(AggregateFunction.COUNT)], predicate=predicate)
            costs.append(fast_enclave.cost.block_ios - before)
        assert costs[0] == costs[1]


class TestGroupBy:
    def test_hash_grouping(self, table: FlatStorage) -> None:
        out = group_by_aggregate(
            table, "g", [spec(AggregateFunction.SUM, "x")]
        )
        expected = sorted(
            (g, float(sum(i for i in range(24) if i % 3 == g))) for g in range(3)
        )
        assert sorted(out.rows()) == expected

    def test_count_per_group(self, table: FlatStorage) -> None:
        out = group_by_aggregate(table, "g", [spec(AggregateFunction.COUNT)])
        assert sorted(out.rows()) == [(0, 8.0), (1, 8.0), (2, 8.0)]

    def test_multiple_aggregates(self, table: FlatStorage) -> None:
        out = group_by_aggregate(
            table,
            "g",
            [spec(AggregateFunction.MIN, "x"), spec(AggregateFunction.MAX, "x")],
        )
        rows = dict((row[0], (row[1], row[2])) for row in out.rows())
        assert rows[0] == (0.0, 21.0)
        assert rows[1] == (1.0, 22.0)
        assert rows[2] == (2.0, 23.0)

    def test_with_predicate(self, table: FlatStorage) -> None:
        out = group_by_aggregate(
            table,
            "g",
            [spec(AggregateFunction.COUNT)],
            predicate=Comparison("x", "<", 6),
        )
        assert sorted(out.rows()) == [(0, 2.0), (1, 2.0), (2, 2.0)]

    def test_group_by_string_column(self, fast_enclave: Enclave) -> None:
        schema = Schema([str_column("cat", 8), int_column("x")])
        table = FlatStorage(fast_enclave, schema, 16)
        for i in range(12):
            table.fast_insert((f"cat{i % 2}", i))
        out = group_by_aggregate(table, "cat", [spec(AggregateFunction.COUNT)])
        assert sorted(out.rows()) == [("cat0", 6.0), ("cat1", 6.0)]

    def test_sorted_fallback_on_tiny_oblivious_memory(self) -> None:
        """When the group table can't fit, Opaque's sort-based approach
        must produce identical results."""
        enclave = Enclave(oblivious_memory_bytes=4, cipher="null")
        schema = Schema([int_column("g"), int_column("x")])
        table = FlatStorage(enclave, schema, 32)
        for i in range(24):
            table.fast_insert((i % 5, i))
        out = group_by_aggregate(table, "g", [spec(AggregateFunction.SUM, "x")])
        expected = sorted(
            (g, float(sum(i for i in range(24) if i % 5 == g))) for g in range(5)
        )
        assert sorted(out.rows()) == expected

    def test_fallback_matches_hash_path(self, fast_enclave: Enclave) -> None:
        from repro.operators.aggregate import _sorted_group_aggregate

        schema = Schema([int_column("g"), int_column("x")])
        table = FlatStorage(fast_enclave, schema, 32)
        for i in range(20):
            table.fast_insert((i % 4, i))
        hash_out = group_by_aggregate(table, "g", [spec(AggregateFunction.AVG, "x")])
        sort_out = _sorted_group_aggregate(
            table, "g", [spec(AggregateFunction.AVG, "x")], None
        )
        assert sorted(hash_out.rows()) == sorted(sort_out.rows())

    def test_empty_input(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        empty = FlatStorage(fast_enclave, kv_schema, 8)
        out = group_by_aggregate(empty, "key", [spec(AggregateFunction.COUNT)])
        assert out.rows() == []

    def test_output_groups_padding(self, table: FlatStorage) -> None:
        out = group_by_aggregate(
            table, "g", [spec(AggregateFunction.COUNT)], output_groups=10
        )
        assert out.capacity == 10
        assert len(out.rows()) == 3

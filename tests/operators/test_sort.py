"""Unit tests for the oblivious sorters."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.operators import bitonic_sort, external_oblivious_sort, padded_scratch
from repro.storage import FlatStorage, Schema, int_column


def fill(enclave: Enclave, capacity: int, values: list[int]) -> FlatStorage:
    schema = Schema([int_column("x")])
    table = FlatStorage(enclave, schema, capacity)
    for value in values:
        table.fast_insert((value,))
    return table


def sorted_values(table: FlatStorage) -> list[int]:
    out = [table.read_row(i) for i in range(table.capacity)]
    return [row[0] for row in out if row is not None]


class TestBitonicSort:
    @pytest.mark.parametrize("n,fill_count", [(1, 1), (2, 2), (8, 8), (16, 11), (64, 64)])
    def test_sorts_various_sizes(
        self, fast_enclave: Enclave, n: int, fill_count: int
    ) -> None:
        rng = random.Random(n)
        values = [rng.randrange(1000) for _ in range(fill_count)]
        table = fill(fast_enclave, n, values)
        bitonic_sort(table, key=lambda row: (row[0],))
        assert sorted_values(table) == sorted(values)

    def test_dummies_sort_last(self, fast_enclave: Enclave) -> None:
        table = fill(fast_enclave, 8, [5, 3])
        bitonic_sort(table, key=lambda row: (row[0],))
        rows = [table.read_row(i) for i in range(8)]
        assert rows[:2] == [(3,), (5,)]
        assert all(row is None for row in rows[2:])

    def test_non_power_of_two_rejected(self, fast_enclave: Enclave) -> None:
        table = fill(fast_enclave, 6, [1, 2])
        with pytest.raises(ValueError):
            bitonic_sort(table, key=lambda row: (row[0],))

    @pytest.mark.parametrize("enclave_rows", [2, 4, 16])
    def test_enclave_cutover_correct(self, fast_enclave: Enclave, enclave_rows: int) -> None:
        rng = random.Random(99)
        values = [rng.randrange(100) for _ in range(32)]
        table = fill(fast_enclave, 32, values)
        bitonic_sort(table, key=lambda row: (row[0],), enclave_rows=enclave_rows)
        assert sorted_values(table) == sorted(values)

    def test_cutover_reduces_block_ios(self, fast_enclave: Enclave) -> None:
        """The 0-OM join optimisation: bigger enclave buffers, fewer IOs."""
        rng = random.Random(5)
        values = [rng.randrange(100) for _ in range(64)]

        table = fill(fast_enclave, 64, values)
        before = fast_enclave.cost.block_ios
        bitonic_sort(table, key=lambda row: (row[0],), enclave_rows=1)
        network_cost = fast_enclave.cost.block_ios - before

        table2 = fill(fast_enclave, 64, values)
        before = fast_enclave.cost.block_ios
        bitonic_sort(table2, key=lambda row: (row[0],), enclave_rows=16)
        cutover_cost = fast_enclave.cost.block_ios - before
        assert cutover_cost < network_cost

    def test_access_pattern_data_independent(self, kv_schema: Schema) -> None:
        """Two different datasets of equal size: identical traces."""
        traces = []
        for seed in (1, 2):
            enclave = Enclave(cipher="null", keep_trace_events=True)
            rng = random.Random(seed)
            table = fill(enclave, 16, [rng.randrange(1000) for _ in range(16)])
            enclave.trace.clear()
            bitonic_sort(table, key=lambda row: (row[0],))
            traces.append(enclave.trace.digest())
        assert traces[0] == traces[1]


class TestExternalObliviousSort:
    @pytest.mark.parametrize("chunk", [1, 2, 4, 8])
    def test_sorts_with_various_chunks(self, fast_enclave: Enclave, chunk: int) -> None:
        rng = random.Random(chunk)
        values = [rng.randrange(1000) for _ in range(32)]
        table = fill(fast_enclave, 32, values)
        external_oblivious_sort(table, key=lambda row: (row[0],), chunk_rows=chunk)
        assert sorted_values(table) == sorted(values)

    def test_single_chunk_quicksort(self, fast_enclave: Enclave) -> None:
        values = [9, 1, 8, 2]
        table = fill(fast_enclave, 4, values)
        external_oblivious_sort(table, key=lambda row: (row[0],), chunk_rows=8)
        assert sorted_values(table) == sorted(values)

    def test_bad_chunk_divisibility_rejected(self, fast_enclave: Enclave) -> None:
        table = fill(fast_enclave, 8, [1])
        with pytest.raises(ValueError):
            external_oblivious_sort(table, key=lambda row: (row[0],), chunk_rows=3)

    def test_larger_chunks_cost_less(self, fast_enclave: Enclave) -> None:
        """Opaque's speedup from oblivious memory: fewer merge stages."""
        rng = random.Random(3)
        values = [rng.randrange(1000) for _ in range(64)]
        costs = {}
        for chunk in (1, 16):
            table = fill(fast_enclave, 64, values)
            before = fast_enclave.cost.block_ios
            external_oblivious_sort(table, key=lambda row: (row[0],), chunk_rows=chunk)
            costs[chunk] = fast_enclave.cost.block_ios - before
        assert costs[16] < costs[1]

    def test_charges_oblivious_memory(self, kv_schema: Schema) -> None:
        enclave = Enclave(oblivious_memory_bytes=8, cipher="null")
        table = fill(enclave, 16, [3, 1, 2])
        from repro.enclave import ObliviousMemoryError

        with pytest.raises(ObliviousMemoryError):
            external_oblivious_sort(table, key=lambda row: (row[0],), chunk_rows=4)


class TestPaddedScratch:
    def test_rounds_up_to_power_of_two(self) -> None:
        assert padded_scratch(1) == 1
        assert padded_scratch(2) == 2
        assert padded_scratch(3) == 4
        assert padded_scratch(100) == 128

    def test_respects_multiple(self) -> None:
        assert padded_scratch(3, multiple_of=8) == 8

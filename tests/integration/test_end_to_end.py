"""End-to-end integration tests: full workloads through the public API."""

from __future__ import annotations

import random

import pytest

from repro import ObliDB, StorageMethod
from repro.storage import Schema, int_column
from repro.workloads import (
    Q1_SQL,
    Q2_SQL,
    Q3_SQL,
    RANKINGS_SCHEMA,
    USERVISITS_SCHEMA,
    generate,
)


class TestBDBEndToEnd:
    """The Big Data Benchmark pipeline through SQL, checked for answers."""

    @pytest.fixture(scope="class")
    def db(self) -> ObliDB:
        data = generate(rankings_rows=300, uservisits_rows=300, seed=44)
        db = ObliDB(cipher="null", seed=44)
        db.create_table(
            "rankings", RANKINGS_SCHEMA, 300,
            method=StorageMethod.BOTH, key_column="pageRank",
        )
        db.create_table("uservisits", USERVISITS_SCHEMA, 300)
        rankings = db.table("rankings")
        for row in data.rankings:
            rankings.insert(row, fast=True)
        uservisits = db.table("uservisits")
        for row in data.uservisits:
            uservisits.insert(row, fast=True)
        self._data = data
        type(self).data = data
        return db

    def test_q1_filter(self, db: ObliDB) -> None:
        result = db.sql(Q1_SQL)
        expected = sorted(
            (row[0], row[1]) for row in self.data.rankings if row[1] > 1000
        )
        assert sorted(result.rows) == expected
        # The selective query must have used the index.
        assert any(p.operator == "index_range" for p in result.plans)

    def test_q2_grouped_aggregation(self, db: ObliDB) -> None:
        result = db.sql(Q2_SQL)
        expected: dict[str, float] = {}
        for row in self.data.uservisits:
            expected[row[1]] = expected.get(row[1], 0.0) + row[4]
        assert len(result.rows) == len(expected)
        for prefix, revenue in result.rows:
            assert revenue == pytest.approx(expected[prefix])

    def test_q3_join_aggregate(self, db: ObliDB) -> None:
        result = db.sql(Q3_SQL)
        urls = {row[0] for row in self.data.rankings}
        expected_rows = [
            row for row in self.data.uservisits
            if row[3] < "1980-04-01" and row[2] in urls
        ]
        count, revenue = result.rows[0]
        assert count == len(expected_rows)
        assert revenue == pytest.approx(sum(row[4] for row in expected_rows))


class TestMixedLifecycle:
    """A long randomized session mixing DDL, writes, and reads."""

    def test_random_session_against_model(self) -> None:
        db = ObliDB(cipher="null", seed=99)
        db.sql(
            "CREATE TABLE kv (k INT, v INT) CAPACITY 128 METHOD both KEY k"
        )
        model: dict[int, int] = {}
        rng = random.Random(123)
        for step in range(120):
            action = rng.random()
            key = rng.randrange(40)
            if action < 0.45 and key not in model and len(model) < 100:
                db.sql(f"INSERT INTO kv VALUES ({key}, {step})")
                model[key] = step
            elif action < 0.65 and key in model:
                db.sql(f"UPDATE kv SET v = {step} WHERE k = {key}")
                model[key] = step
            elif action < 0.8 and key in model:
                db.sql(f"DELETE FROM kv WHERE k = {key}")
                del model[key]
            elif action < 0.9:
                result = db.sql(f"SELECT * FROM kv WHERE k = {key}")
                expected = [(key, model[key])] if key in model else []
                assert result.rows == expected
            else:
                result = db.sql("SELECT COUNT(*) FROM kv")
                assert result.scalar() == len(model)
        # Final state check through both access paths.
        rows = db.sql("SELECT * FROM kv").rows
        assert sorted(rows) == sorted(model.items())

    def test_table_growth_via_copy(self) -> None:
        """A table grown past initial capacity keeps its data."""
        db = ObliDB(cipher="null", seed=5)
        db.sql("CREATE TABLE t (x INT) CAPACITY 4")
        for i in range(4):
            db.sql(f"INSERT INTO t VALUES ({i})")
        table = db.table("t")
        bigger = table.require_flat().copy_to(capacity=16)
        assert sorted(bigger.rows()) == [(0,), (1,), (2,), (3,)]
        bigger.fast_insert((4,))
        assert len(bigger.rows()) == 5


class TestCrossRepresentationConsistency:
    def test_queries_agree_across_methods(self) -> None:
        """The same queries on flat-only, index-only, and combined tables
        must return identical answers."""
        schema = Schema([int_column("k"), int_column("g")])
        rows = [(i, i % 5) for i in range(30)]
        answers = []
        for method in (StorageMethod.FLAT, StorageMethod.INDEXED, StorageMethod.BOTH):
            db = ObliDB(cipher="null", seed=7)
            key = "k" if method is not StorageMethod.FLAT else None
            db.create_table("t", schema, 64, method=method, key_column=key)
            table = db.table("t")
            for row in rows:
                table.insert(row, fast=table.flat is not None)
            answers.append(
                (
                    sorted(db.sql("SELECT * FROM t WHERE k >= 10 AND k <= 14").rows),
                    sorted(db.sql("SELECT g, COUNT(*) FROM t GROUP BY g").rows),
                    db.sql("SELECT SUM(k) FROM t").scalar(),
                )
            )
        assert answers[0] == answers[1] == answers[2]

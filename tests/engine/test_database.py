"""Integration tests for the ObliDB facade: SQL in, results out."""

from __future__ import annotations

import pytest

from repro import ObliDB
from repro.enclave import QueryError, StorageError


@pytest.fixture
def db() -> ObliDB:
    db = ObliDB(cipher="null", seed=42)
    db.sql(
        "CREATE TABLE emp (id INT, dept STR(8), salary INT) "
        "CAPACITY 64 METHOD both KEY id"
    )
    for i in range(20):
        db.sql(f"INSERT INTO emp VALUES ({i}, 'd{i % 4}', {1000 + i * 10})")
    return db


class TestCatalog:
    def test_create_and_list(self, db: ObliDB) -> None:
        assert db.table_names() == ["emp"]
        db.sql("CREATE TABLE t2 (x INT) CAPACITY 4")
        assert db.table_names() == ["emp", "t2"]

    def test_duplicate_table_rejected(self, db: ObliDB) -> None:
        with pytest.raises(StorageError):
            db.sql("CREATE TABLE emp (x INT) CAPACITY 4")

    def test_drop_table(self, db: ObliDB) -> None:
        db.drop_table("emp")
        assert db.table_names() == []
        with pytest.raises(StorageError):
            db.drop_table("emp")

    def test_unknown_table_rejected(self, db: ObliDB) -> None:
        with pytest.raises(QueryError):
            db.sql("SELECT * FROM ghost")

    def test_unknown_method_rejected(self) -> None:
        db = ObliDB(cipher="null")
        with pytest.raises(QueryError):
            db.sql("CREATE TABLE t (x INT) METHOD quantum")


class TestSelects:
    def test_point_query_via_index(self, db: ObliDB) -> None:
        result = db.sql("SELECT * FROM emp WHERE id = 7")
        assert result.rows == [(7, "d3", 1070)]
        assert any(p.operator == "index_range" for p in result.plans)

    def test_range_query_via_index(self, db: ObliDB) -> None:
        result = db.sql("SELECT * FROM emp WHERE id >= 5 AND id <= 8")
        assert sorted(row[0] for row in result.rows) == [5, 6, 7, 8]

    def test_non_key_predicate_scans_flat(self, db: ObliDB) -> None:
        result = db.sql("SELECT * FROM emp WHERE dept = 'd1'")
        assert sorted(row[0] for row in result.rows) == [1, 5, 9, 13, 17]
        assert all(p.operator != "index_range" for p in result.plans)

    def test_projection(self, db: ObliDB) -> None:
        result = db.sql("SELECT salary, id FROM emp WHERE id = 3")
        assert result.rows == [(1030, 3)]
        assert result.column_names == ["salary", "id"]

    def test_aggregate(self, db: ObliDB) -> None:
        result = db.sql("SELECT COUNT(*), MIN(salary), MAX(salary) FROM emp")
        assert result.rows == [(20, 1000, 1190)]

    def test_fused_aggregate_with_where(self, db: ObliDB) -> None:
        result = db.sql("SELECT SUM(salary) FROM emp WHERE dept = 'd0'")
        expected = sum(1000 + i * 10 for i in range(20) if i % 4 == 0)
        assert result.scalar() == expected

    def test_group_by(self, db: ObliDB) -> None:
        result = db.sql("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
        assert sorted(result.rows) == [
            ("d0", 5.0), ("d1", 5.0), ("d2", 5.0), ("d3", 5.0),
        ]

    def test_empty_result(self, db: ObliDB) -> None:
        result = db.sql("SELECT * FROM emp WHERE id = 999")
        assert result.rows == []

    def test_cost_recorded(self, db: ObliDB) -> None:
        result = db.sql("SELECT COUNT(*) FROM emp")
        assert result.cost["untrusted_reads"] > 0


class TestWrites:
    def test_update(self, db: ObliDB) -> None:
        result = db.sql("UPDATE emp SET salary = 9999 WHERE id = 4")
        assert result.affected == 1
        assert db.sql("SELECT salary FROM emp WHERE id = 4").rows == [(9999,)]

    def test_delete(self, db: ObliDB) -> None:
        result = db.sql("DELETE FROM emp WHERE dept = 'd2'")
        assert result.affected == 5
        assert db.sql("SELECT COUNT(*) FROM emp").scalar() == 15

    def test_insert_then_query(self, db: ObliDB) -> None:
        db.sql("INSERT INTO emp VALUES (100, 'new', 5000)")
        assert db.sql("SELECT * FROM emp WHERE id = 100").rows == [
            (100, "new", 5000)
        ]

    def test_typed_api(self, db: ObliDB) -> None:
        from repro import Comparison

        db.insert("emp", (200, "api", 1))
        result = db.select("emp", where=Comparison("id", "=", 200))
        assert result.rows == [(200, "api", 1)]
        assert db.point_lookup("emp", 200) == [(200, "api", 1)]


class TestJoins:
    @pytest.fixture
    def join_db(self) -> ObliDB:
        db = ObliDB(cipher="null", seed=7)
        db.sql("CREATE TABLE dept (name STR(8), budget INT) CAPACITY 8")
        db.sql("CREATE TABLE emp (id INT, dept STR(8)) CAPACITY 16")
        for i, name in enumerate(["d0", "d1", "d2"]):
            db.sql(f"INSERT INTO dept VALUES ('{name}', {100 * (i + 1)})")
        for i in range(10):
            db.sql(f"INSERT INTO emp VALUES ({i}, 'd{i % 3}')")
        return db

    def test_join_rows(self, join_db: ObliDB) -> None:
        result = join_db.sql(
            "SELECT * FROM dept JOIN emp ON dept.name = emp.dept"
        )
        assert len(result.rows) == 10
        for row in result.rows:
            assert row[0] == row[3]  # dept name matches

    def test_join_with_where(self, join_db: ObliDB) -> None:
        result = join_db.sql(
            "SELECT * FROM dept JOIN emp ON name = dept WHERE budget > 150"
        )
        assert all(row[1] > 150 for row in result.rows)

    def test_join_then_aggregate(self, join_db: ObliDB) -> None:
        result = join_db.sql(
            "SELECT SUM(budget) FROM dept JOIN emp ON name = dept"
        )
        # 4 emps in d0 (100), 3 in d1 (200), 3 in d2 (300)
        assert result.scalar() == 4 * 100 + 3 * 200 + 3 * 300

    def test_join_group_by(self, join_db: ObliDB) -> None:
        result = join_db.sql(
            "SELECT dept, COUNT(*) FROM dept JOIN emp ON name = dept GROUP BY dept"
        )
        assert sorted(result.rows) == [("d0", 4.0), ("d1", 3.0), ("d2", 3.0)]


class TestIndexOnlyTables:
    def test_full_scan_via_linear_fallback(self) -> None:
        db = ObliDB(cipher="null", seed=3)
        db.sql(
            "CREATE TABLE t (k INT, v STR(8)) CAPACITY 32 METHOD indexed KEY k"
        )
        for i in range(10):
            db.sql(f"INSERT INTO t VALUES ({i}, 'v{i}')")
        result = db.sql("SELECT COUNT(*) FROM t")
        assert result.scalar() == 10
        result = db.sql("SELECT * FROM t WHERE v = 'v3'")
        assert result.rows == [(3, "v3")]

"""Tests for the fsck-style :meth:`ObliDB.verify` invariant sweep."""

from __future__ import annotations

from repro import ObliDB


def _workload_db(**kwargs) -> ObliDB:
    db = ObliDB(cipher="null", seed=1, **kwargs)
    db.sql("CREATE TABLE flat_t (x INT, v STR(8)) CAPACITY 8 METHOD flat")
    db.sql("CREATE TABLE both_t (k INT, v STR(8)) CAPACITY 16 METHOD both KEY k")
    for i in range(4):
        db.sql(f"INSERT INTO flat_t VALUES ({i}, 'f{i}')")
        db.sql(f"INSERT INTO both_t VALUES ({i}, 'b{i}')")
    db.sql("UPDATE flat_t SET v = 'new' WHERE x = 2")
    db.sql("DELETE FROM both_t WHERE k = 1")
    return db


class TestVerifyClean:
    def test_ok_after_mixed_workload(self):
        report = _workload_db().verify()
        assert report.ok
        assert report.issues == []
        assert report.tables_checked == 2
        assert report.blocks_verified > 0

    def test_ok_with_wal(self):
        report = _workload_db(wal=True).verify()
        assert report.ok

    def test_ok_on_empty_database(self):
        report = ObliDB(cipher="null").verify()
        assert report.ok
        assert report.tables_checked == 0


class TestVerifyFindsDamage:
    def test_tampered_table_block_is_an_issue_not_a_raise(self):
        db = _workload_db()
        block = db.enclave.untrusted.peek("table:flat_t:flat", 1)
        corrupted = block._replace(
            ciphertext=bytes([block.ciphertext[0] ^ 1]) + block.ciphertext[1:]
        )
        db.enclave.untrusted.tamper("table:flat_t:flat", 1, corrupted)
        report = db.verify()
        assert not report.ok
        assert any("flat verification failed" in issue for issue in report.issues)

    def test_missing_region_is_an_issue(self):
        db = _workload_db()
        db.enclave.untrusted.free_region("table:flat_t:flat")
        report = db.verify()
        assert any("missing" in issue for issue in report.issues)

    def test_leaked_scratch_region_is_an_issue(self):
        db = _workload_db()
        db.enclave.untrusted.allocate_region("flat#999", 4)
        report = db.verify()
        assert report.issues == ["leaked scratch region flat#999"]

    def test_uncommitted_wal_tail_is_an_issue(self):
        db = _workload_db(wal=True)
        wal = db.wal
        stranded = db.enclave.seal(b"SELECT 1", wal._aad(wal.count))
        db.enclave.untrusted.write(wal.region_name, wal.count, stranded)
        report = db.verify()
        assert any("uncommitted trailing" in issue for issue in report.issues)

    def test_tampered_wal_record_is_an_issue(self):
        db = _workload_db(wal=True)
        wal = db.wal
        db.enclave.untrusted.tamper(wal.region_name, 0, None)
        report = db.verify()
        assert any("WAL verification failed" in issue for issue in report.issues)

"""Tests for the write-ahead log extension (Section 3)."""

from __future__ import annotations

import pytest

from repro import ObliDB
from repro.enclave import Enclave, IntegrityError, StorageError, WALReplayError
from repro.engine import WriteAheadLog


class TestWriteAheadLog:
    def test_append_and_read_back(self, enclave: Enclave) -> None:
        wal = WriteAheadLog(enclave)
        wal.append("INSERT INTO t VALUES (1)")
        wal.append("DELETE FROM t WHERE x = 2")
        assert wal.count == 2
        assert wal.read_all() == [
            "INSERT INTO t VALUES (1)",
            "DELETE FROM t WHERE x = 2",
        ]

    def test_log_grows_past_initial_capacity(self, enclave: Enclave) -> None:
        wal = WriteAheadLog(enclave)
        for i in range(200):
            wal.append(f"INSERT INTO t VALUES ({i})")
        assert wal.count == 200
        assert len(wal.read_all()) == 200

    def test_append_is_one_sequential_write(self, enclave: Enclave) -> None:
        """The paper's no-extra-leakage argument: one write per statement."""
        wal = WriteAheadLog(enclave)
        enclave.trace.clear()
        wal.append("INSERT INTO t VALUES (1)")
        events = enclave.trace.events
        assert [(e.op, e.index) for e in events] == [("W", 0)]

    def test_tampered_record_detected(self, enclave: Enclave) -> None:
        wal = WriteAheadLog(enclave)
        wal.append("INSERT INTO t VALUES (1)")
        wal.append("INSERT INTO t VALUES (2)")
        # The OS swaps two validly sealed records (a reorder attack).
        first = enclave.untrusted.peek(wal.region_name, 0)
        second = enclave.untrusted.peek(wal.region_name, 1)
        enclave.untrusted.tamper(wal.region_name, 0, second)
        enclave.untrusted.tamper(wal.region_name, 1, first)
        with pytest.raises(IntegrityError):
            wal.read_all()

    def test_truncation_detected(self, enclave: Enclave) -> None:
        wal = WriteAheadLog(enclave)
        wal.append("INSERT INTO t VALUES (1)")
        wal.append("INSERT INTO t VALUES (2)")
        enclave.untrusted.tamper(wal.region_name, 1, None)
        with pytest.raises(IntegrityError, match="truncated"):
            wal.read_all(expected_count=2)

    def test_batched_read_is_the_per_record_loop(self, enclave: Enclave) -> None:
        """read_all's chunked range reads record R 0 .. R count-1, exactly
        the sequence of the per-record scalar loop."""
        wal = WriteAheadLog(enclave)
        for i in range(5):
            wal.append(f"INSERT INTO t VALUES ({i})")
        enclave.trace.clear()
        wal.read_all()
        assert [(e.op, e.region, e.index) for e in enclave.trace.events] == [
            ("R", wal.region_name, i) for i in range(5)
        ]

    def test_expected_count_mismatch_raises_typed_error(
        self, enclave: Enclave
    ) -> None:
        """A stale (or tampered-forward) client counter is rejected against
        the rollback-protected ledger head before any record is decrypted."""
        wal = WriteAheadLog(enclave)
        wal.append("INSERT INTO t VALUES (1)")
        wal.append("INSERT INTO t VALUES (2)")
        assert wal.committed_count == 2
        enclave.trace.clear()
        for wrong in (1, 3):
            with pytest.raises(WALReplayError, match="mismatch"):
                wal.read_all(expected_count=wrong)
        assert len(enclave.trace) == 0  # rejected before any observable read
        assert len(wal.read_all(expected_count=2)) == 2


class TestGroupCommit:
    def test_append_many_reads_back_in_order(self, enclave: Enclave) -> None:
        wal = WriteAheadLog(enclave)
        wal.append("S0")
        first, count = wal.append_many(["S1", "S2", "S3"])
        assert (first, count) == (1, 3)
        assert wal.count == wal.committed_count == 4
        assert wal.read_all() == ["S0", "S1", "S2", "S3"]

    def test_append_many_empty_batch_is_a_noop(self, enclave: Enclave) -> None:
        wal = WriteAheadLog(enclave)
        wal.append("S0")
        enclave.trace.clear()
        assert wal.append_many([]) == (1, 0)
        assert len(enclave.trace) == 0
        assert wal.committed_count == 1

    def test_append_many_is_one_sequential_range_write(
        self, enclave: Enclave
    ) -> None:
        """Group commit keeps the paper's leakage argument: the batch is one
        sequential range write (per-slot events W first..first+n-1), and the
        single ledger-head commit is enclave-side (unobservable)."""
        wal = WriteAheadLog(enclave)
        wal.append("S0")
        enclave.trace.clear()
        wal.append_many(["S1", "S2", "S3"])
        assert [(e.op, e.index) for e in enclave.trace.events] == [
            ("W", 1),
            ("W", 2),
            ("W", 3),
        ]


class TestTornTail:
    def test_crash_between_record_write_and_head_commit(
        self, enclave: Enclave
    ) -> None:
        """The durability-ordering window: a record written but whose head
        commit never ran is a detected-and-dropped torn tail, not a replayed
        statement and not an integrity failure."""
        wal = WriteAheadLog(enclave)
        wal.append("S0")
        wal.append("S1")
        sealed = enclave.seal(b"S2", wal._aad(2))
        enclave.untrusted.write(wal.region_name, 2, sealed)  # head: still 2
        statements, dropped = wal.read_committed()
        assert statements == ["S0", "S1"]
        assert dropped == 1

    def test_torn_batch_drops_whole_group(self, enclave: Enclave) -> None:
        """A crash before a group commit's single head commit strands the
        entire batch: recovery never sees half an ingest burst."""
        wal = WriteAheadLog(enclave)
        wal.append("S0")
        sealed = enclave.seal_many(
            [b"S1", b"S2"], [wal._aad(1), wal._aad(2)]
        )
        enclave.untrusted.write_range(wal.region_name, 1, sealed)
        statements, dropped = wal.read_committed()
        assert statements == ["S0"]
        assert dropped == 2

    def test_corrupt_tail_record_is_tampering_not_a_torn_write(
        self, enclave: Enclave
    ) -> None:
        wal = WriteAheadLog(enclave)
        wal.append("S0")
        bogus = enclave.seal(b"S9", wal._aad(9))  # wrong sequence binding
        enclave.untrusted.write(wal.region_name, 1, bogus)
        with pytest.raises(IntegrityError, match="uncommitted WAL tail"):
            wal.read_committed()

    def test_read_all_never_returns_past_the_head(
        self, enclave: Enclave
    ) -> None:
        wal = WriteAheadLog(enclave)
        wal.append("S0")
        sealed = enclave.seal(b"S1", wal._aad(1))
        enclave.untrusted.write(wal.region_name, 1, sealed)
        assert wal.read_all() == ["S0"]  # count is the head, never the slots

    def test_recover_reports_dropped_tail(self) -> None:
        db = ObliDB(cipher="null", wal=True, seed=9)
        db.sql("CREATE TABLE t (x INT) CAPACITY 4")
        db.sql("INSERT INTO t VALUES (1)")
        wal = db.wal
        assert wal is not None
        stranded = db.enclave.seal(
            b"INSERT INTO t VALUES (99)", wal._aad(wal.count)
        )
        db.enclave.untrusted.write(wal.region_name, wal.count, stranded)
        recovered = ObliDB(cipher="null", seed=10)
        report = recovered.recover(wal)
        assert (report.replayed, report.dropped_tail) == (2, 1)
        # The stranded statement was never acknowledged: dropping it is
        # correct, and the recovered state shows only the committed prefix.
        assert recovered.sql("SELECT * FROM t").rows == [(1,)]


class TestReplayChunkBoundaries:
    @pytest.mark.parametrize("count", [1023, 1024, 1025])
    def test_replay_at_chunk_edges(self, fast_enclave: Enclave, count) -> None:
        """_REPLAY_CHUNK-edge counts: order preserved, truncation and
        MAC-tamper of the final record detected in the last chunk."""
        wal = WriteAheadLog(fast_enclave)
        first, appended = wal.append_many([f"S{i}" for i in range(count)])
        assert (first, appended) == (0, count)
        statements = wal.read_all(expected_count=count)
        assert len(statements) == count
        assert statements[0] == "S0"
        assert statements[-1] == f"S{count - 1}"
        victim = count - 1
        block = fast_enclave.untrusted.peek(wal.region_name, victim)
        corrupted = block._replace(
            ciphertext=bytes([block.ciphertext[0] ^ 1]) + block.ciphertext[1:]
        )
        fast_enclave.untrusted.tamper(wal.region_name, victim, corrupted)
        with pytest.raises(IntegrityError):
            wal.read_all()
        fast_enclave.untrusted.tamper(wal.region_name, victim, None)
        with pytest.raises(IntegrityError, match="truncated"):
            wal.read_all()


class TestDatabaseIntegration:
    def test_writes_logged_reads_not(self) -> None:
        db = ObliDB(cipher="null", wal=True, seed=1)
        db.sql("CREATE TABLE t (x INT) CAPACITY 8")
        db.sql("INSERT INTO t VALUES (1)")
        db.sql("SELECT * FROM t")
        db.sql("UPDATE t SET x = 2 WHERE x = 1")
        db.sql("DELETE FROM t WHERE x = 2")
        assert db.wal is not None
        assert db.wal.count == 4  # CREATE + 3 writes; SELECT not logged

    def test_recovery_replays_to_same_state(self) -> None:
        db = ObliDB(cipher="null", wal=True, seed=2)
        db.sql("CREATE TABLE t (k INT, v STR(8)) CAPACITY 32 METHOD both KEY k")
        for i in range(10):
            db.sql(f"INSERT INTO t VALUES ({i}, 'v{i}')")
        db.sql("UPDATE t SET v = 'new' WHERE k = 3")
        db.sql("DELETE FROM t WHERE k = 7")

        recovered = ObliDB(cipher="null", seed=3)
        assert db.wal is not None
        replayed = recovered.recover_from(db.wal)
        assert replayed == db.wal.count
        assert sorted(recovered.sql("SELECT * FROM t").rows) == sorted(
            db.sql("SELECT * FROM t").rows
        )
        assert recovered.point_lookup("t", 3) == [(3, "new")]
        assert recovered.point_lookup("t", 7) == []

    def test_replay_into_nonempty_rejected(self) -> None:
        db = ObliDB(cipher="null", wal=True, seed=4)
        db.sql("CREATE TABLE t (x INT) CAPACITY 4")
        occupied = ObliDB(cipher="null", seed=5)
        occupied.sql("CREATE TABLE other (y INT) CAPACITY 4")
        assert db.wal is not None
        with pytest.raises(StorageError):
            occupied.recover_from(db.wal)

    def test_wal_disabled_by_default(self) -> None:
        db = ObliDB(cipher="null", seed=6)
        assert db.wal is None

    def test_typed_inserts_are_logged_and_replay(self) -> None:
        """insert()/insert_many() log replayable SQL — including strings
        the tokenizer needs escaped (quotes), which repr() would break."""
        db = ObliDB(cipher="null", wal=True, seed=7)
        db.sql("CREATE TABLE t (k INT, v STR(12)) CAPACITY 16")
        db.insert("t", (1, "it's"))
        db.insert_many("t", [(2, "a''b"), (3, "plain")])
        assert db.wal is not None
        assert db.wal.count == 4  # CREATE + 3 inserts
        recovered = ObliDB(cipher="null", seed=8)
        assert recovered.recover_from(db.wal) == 4
        assert sorted(recovered.sql("SELECT * FROM t").rows) == [
            (1, "it's"),
            (2, "a''b"),
            (3, "plain"),
        ]

"""Unit tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.enclave import SQLSyntaxError
from repro.engine import parse
from repro.engine.ast import (
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
)
from repro.operators import AggregateFunction, And, Comparison, Not, Or


class TestSelectParsing:
    def test_select_star(self) -> None:
        statement = parse("SELECT * FROM t")
        assert isinstance(statement, SelectStatement)
        assert statement.table == "t"
        assert statement.columns == ()
        assert statement.where is None

    def test_select_columns(self) -> None:
        statement = parse("SELECT a, b FROM t")
        assert statement.columns == ("a", "b")

    def test_where_comparison(self) -> None:
        statement = parse("SELECT * FROM t WHERE x = 5")
        assert statement.where == Comparison("x", "=", 5)

    def test_where_string_literal(self) -> None:
        statement = parse("SELECT * FROM t WHERE d > '2018-01-01'")
        assert statement.where == Comparison("d", ">", "2018-01-01")

    def test_string_escape(self) -> None:
        statement = parse("SELECT * FROM t WHERE s = 'it''s'")
        assert statement.where == Comparison("s", "=", "it's")

    def test_float_literal(self) -> None:
        statement = parse("SELECT * FROM t WHERE f >= 1.25")
        assert statement.where == Comparison("f", ">=", 1.25)

    def test_and_or_precedence(self) -> None:
        statement = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(statement.where, Or)
        assert statement.where.operands[0] == Comparison("a", "=", 1)
        assert isinstance(statement.where.operands[1], And)

    def test_parentheses(self) -> None:
        statement = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(statement.where, And)
        assert isinstance(statement.where.operands[0], Or)

    def test_not(self) -> None:
        statement = parse("SELECT * FROM t WHERE NOT a = 1")
        assert statement.where == Not(Comparison("a", "=", 1))

    def test_not_equal_variants(self) -> None:
        assert parse("SELECT * FROM t WHERE a != 1").where == Comparison("a", "!=", 1)
        assert parse("SELECT * FROM t WHERE a <> 1").where == Comparison("a", "!=", 1)

    def test_aggregates(self) -> None:
        statement = parse("SELECT COUNT(*), SUM(x), AVG(y) FROM t")
        functions = [spec.function for spec in statement.aggregates]
        assert functions == [
            AggregateFunction.COUNT,
            AggregateFunction.SUM,
            AggregateFunction.AVG,
        ]

    def test_group_by(self) -> None:
        statement = parse("SELECT g, COUNT(*) FROM t GROUP BY g")
        assert statement.group_by == "g"
        assert statement.columns == ("g",)

    def test_join(self) -> None:
        statement = parse(
            "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z > 1"
        )
        assert statement.join is not None
        assert statement.join.right_table == "b"
        assert statement.join.left_column == "x"
        assert statement.join.right_column == "y"
        assert statement.where == Comparison("z", ">", 1)

    def test_keywords_case_insensitive(self) -> None:
        statement = parse("select x, count(*) from t where x = 1 group by x")
        assert isinstance(statement, SelectStatement)
        assert statement.group_by == "x"

    def test_trailing_garbage_rejected(self) -> None:
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t garbage garbage")

    def test_missing_from_rejected(self) -> None:
        with pytest.raises(SQLSyntaxError):
            parse("SELECT *")

    def test_bad_character_rejected(self) -> None:
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t WHERE x = $5")


class TestOtherStatements:
    def test_insert(self) -> None:
        statement = parse("INSERT INTO t VALUES (1, 'a', 2.5)")
        assert isinstance(statement, InsertStatement)
        assert statement.values == (1, "a", 2.5)
        assert not statement.fast

    def test_fast_insert(self) -> None:
        statement = parse("INSERT INTO t FAST VALUES (1, 'a')")
        assert statement.fast

    def test_update(self) -> None:
        statement = parse("UPDATE t SET a = 1, b = 'x' WHERE c = 2")
        assert isinstance(statement, UpdateStatement)
        assert statement.assignments == (("a", 1), ("b", "x"))
        assert statement.where == Comparison("c", "=", 2)

    def test_delete(self) -> None:
        statement = parse("DELETE FROM t WHERE a < 3")
        assert isinstance(statement, DeleteStatement)
        assert statement.where == Comparison("a", "<", 3)

    def test_delete_without_where(self) -> None:
        statement = parse("DELETE FROM t")
        assert statement.where is None

    def test_create_table(self) -> None:
        statement = parse(
            "CREATE TABLE t (id INT, name STR(16), score FLOAT) "
            "CAPACITY 500 METHOD both KEY id"
        )
        assert isinstance(statement, CreateTableStatement)
        assert statement.columns == (
            ("id", "int", 0),
            ("name", "str", 16),
            ("score", "float", 0),
        )
        assert statement.capacity == 500
        assert statement.method == "both"
        assert statement.key_column == "id"

    def test_create_table_defaults(self) -> None:
        statement = parse("CREATE TABLE t (id INT)")
        assert statement.capacity == 1024
        assert statement.method == "flat"
        assert statement.key_column is None

    def test_create_bad_type_rejected(self) -> None:
        with pytest.raises(SQLSyntaxError):
            parse("CREATE TABLE t (id BLOB)")

    def test_unknown_statement_rejected(self) -> None:
        with pytest.raises(SQLSyntaxError):
            parse("VACUUM t")

    def test_empty_statement_rejected(self) -> None:
        with pytest.raises(SQLSyntaxError):
            parse("")

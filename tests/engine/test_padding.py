"""Tests for padding mode (Section 7.1)."""

from __future__ import annotations

import pytest

from repro import ObliDB, PaddingConfig
from repro.enclave import QueryError


@pytest.fixture
def padded_db() -> ObliDB:
    db = ObliDB(
        cipher="null",
        padding=PaddingConfig(pad_rows=30, pad_groups=16),
        seed=5,
    )
    db.sql("CREATE TABLE t (id INT, g INT) CAPACITY 64")
    for i in range(20):
        db.sql(f"INSERT INTO t VALUES ({i}, {i % 3})")
    return db


class TestPaddingConfig:
    def test_bounds_validated(self) -> None:
        with pytest.raises(QueryError):
            PaddingConfig(pad_rows=0, pad_groups=1)
        with pytest.raises(QueryError):
            PaddingConfig(pad_rows=1, pad_groups=0)

    def test_check_fits(self) -> None:
        config = PaddingConfig(pad_rows=10, pad_groups=5)
        config.check_fits(10)
        with pytest.raises(QueryError):
            config.check_fits(11)


class TestPaddedExecution:
    def test_select_results_correct(self, padded_db: ObliDB) -> None:
        result = padded_db.sql("SELECT * FROM t WHERE id < 5")
        assert sorted(row[0] for row in result.rows) == [0, 1, 2, 3, 4]

    def test_select_always_hash_algorithm(self, padded_db: ObliDB) -> None:
        result = padded_db.sql("SELECT * FROM t WHERE id < 5")
        select_plans = [p for p in result.plans if p.operator == "select"]
        assert select_plans and all(
            p.select_algorithm is not None
            and p.select_algorithm.value == "hash"
            for p in select_plans
        )

    def test_output_size_is_padded_constant(self, padded_db: ObliDB) -> None:
        """Different selectivities leak the same padded output size."""
        small = padded_db.sql("SELECT * FROM t WHERE id < 2")
        large = padded_db.sql("SELECT * FROM t WHERE id < 15")
        small_sizes = [p.sizes.get("output") for p in small.plans if p.operator == "select"]
        large_sizes = [p.sizes.get("output") for p in large.plans if p.operator == "select"]
        assert small_sizes == large_sizes == [30]

    def test_group_output_padded(self, padded_db: ObliDB) -> None:
        result = padded_db.sql("SELECT g, COUNT(*) FROM t GROUP BY g")
        assert sorted(result.rows) == [(0, 7.0), (1, 7.0), (2, 6.0)]
        group_plans = [p for p in result.plans if p.operator == "group_by"]
        assert group_plans[0].sizes["output"] == 16

    def test_overflow_rejected(self) -> None:
        db = ObliDB(
            cipher="null", padding=PaddingConfig(pad_rows=3, pad_groups=4), seed=1
        )
        db.sql("CREATE TABLE t (id INT) CAPACITY 16")
        for i in range(10):
            db.sql(f"INSERT INTO t VALUES ({i})")
        with pytest.raises(Exception):
            db.sql("SELECT * FROM t WHERE id < 9")

    def test_padding_ignores_index(self) -> None:
        """Indexes reveal selectivity; padding mode must not use them."""
        db = ObliDB(
            cipher="null",
            padding=PaddingConfig(pad_rows=20, pad_groups=8),
            seed=2,
        )
        db.sql("CREATE TABLE t (id INT) CAPACITY 32 METHOD both KEY id")
        for i in range(10):
            db.sql(f"INSERT INTO t VALUES ({i})")
        result = db.sql("SELECT * FROM t WHERE id = 4")
        assert result.rows == [(4,)]
        assert all(p.operator != "index_range" for p in result.plans)

    def test_padded_slowdown_is_bounded(self, padded_db: ObliDB) -> None:
        """Padding costs more than the planned path but not absurdly more
        (the paper reports 2.4x for selects at ~2x table padding)."""
        plain_db = ObliDB(cipher="null", seed=5)
        plain_db.sql("CREATE TABLE t (id INT, g INT) CAPACITY 64")
        for i in range(20):
            plain_db.sql(f"INSERT INTO t VALUES ({i}, {i % 3})")
        padded_cost = padded_db.sql("SELECT * FROM t WHERE id < 5").cost
        plain_cost = plain_db.sql("SELECT * FROM t WHERE id < 5").cost
        assert padded_cost["untrusted_reads"] >= plain_cost["untrusted_reads"]

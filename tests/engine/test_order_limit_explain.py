"""Tests for ORDER BY / LIMIT and EXPLAIN."""

from __future__ import annotations

import pytest

from repro import ObliDB
from repro.enclave import QueryError
from repro.engine import parse


@pytest.fixture
def db() -> ObliDB:
    db = ObliDB(cipher="null", seed=8)
    db.sql("CREATE TABLE t (k INT, v INT, s STR(8)) CAPACITY 64 METHOD both KEY k")
    values = [50, 10, 90, 30, 70, 20, 80, 40, 60, 0]
    for k, v in enumerate(values):
        db.sql(f"INSERT INTO t VALUES ({k}, {v}, 's{v}')")
    return db


class TestOrderByParsing:
    def test_order_by_default_asc(self) -> None:
        statement = parse("SELECT * FROM t ORDER BY v")
        assert statement.order_by == "v"
        assert not statement.descending
        assert statement.limit is None

    def test_order_by_desc_limit(self) -> None:
        statement = parse("SELECT * FROM t ORDER BY v DESC LIMIT 5")
        assert statement.descending
        assert statement.limit == 5

    def test_limit_alone(self) -> None:
        statement = parse("SELECT * FROM t LIMIT 3")
        assert statement.limit == 3

    def test_bad_limit_rejected(self) -> None:
        from repro.enclave import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t LIMIT many")

    def test_order_by_on_scalar_aggregate_rejected(self) -> None:
        with pytest.raises(QueryError):
            parse("SELECT COUNT(*) FROM t ORDER BY v")


class TestOrderByExecution:
    def test_ascending(self, db: ObliDB) -> None:
        result = db.sql("SELECT v FROM t ORDER BY v")
        assert [row[0] for row in result.rows] == sorted(range(0, 100, 10))

    def test_descending(self, db: ObliDB) -> None:
        result = db.sql("SELECT v FROM t ORDER BY v DESC")
        assert [row[0] for row in result.rows] == sorted(range(0, 100, 10), reverse=True)

    def test_order_by_string_column(self, db: ObliDB) -> None:
        result = db.sql("SELECT s FROM t ORDER BY s LIMIT 2")
        assert result.rows == [("s0",), ("s10",)]

    def test_limit_truncates(self, db: ObliDB) -> None:
        result = db.sql("SELECT v FROM t ORDER BY v LIMIT 3")
        assert [row[0] for row in result.rows] == [0, 10, 20]

    def test_limit_larger_than_result(self, db: ObliDB) -> None:
        result = db.sql("SELECT v FROM t WHERE v < 30 ORDER BY v LIMIT 100")
        assert [row[0] for row in result.rows] == [0, 10, 20]

    def test_limit_zero(self, db: ObliDB) -> None:
        result = db.sql("SELECT * FROM t LIMIT 0")
        assert result.rows == []

    def test_order_with_where(self, db: ObliDB) -> None:
        result = db.sql("SELECT v FROM t WHERE v >= 40 ORDER BY v DESC LIMIT 2")
        assert [row[0] for row in result.rows] == [90, 80]

    def test_group_by_order_by_group_column(self, db: ObliDB) -> None:
        db.sql("CREATE TABLE g (c INT, x INT) CAPACITY 16")
        for i in range(12):
            db.sql(f"INSERT INTO g VALUES ({i % 3}, {i})")
        result = db.sql("SELECT c, SUM(x) FROM g GROUP BY c ORDER BY c DESC")
        assert [row[0] for row in result.rows] == [2, 1, 0]

    def test_group_by_order_by_unknown_rejected(self, db: ObliDB) -> None:
        db.sql("CREATE TABLE g2 (c INT, x INT) CAPACITY 8")
        db.sql("INSERT INTO g2 VALUES (1, 1)")
        with pytest.raises(QueryError):
            db.sql("SELECT c, SUM(x) FROM g2 GROUP BY c ORDER BY ghost")

    def test_large_result_oblivious_sort_path(self) -> None:
        """With almost no oblivious memory the in-enclave sort can't fit,
        exercising the bitonic scratch path."""
        db = ObliDB(cipher="null", oblivious_memory_bytes=32, seed=9)
        db.sql("CREATE TABLE big (v INT) CAPACITY 32")
        values = [7, 3, 9, 1, 5, 8, 2, 6]
        for v in values:
            db.sql(f"INSERT INTO big VALUES ({v})")
        result = db.sql("SELECT v FROM big ORDER BY v")
        assert [row[0] for row in result.rows] == sorted(values)
        assert any(
            p.operator == "order_by" and p.sizes.get("in_enclave") == 0
            for p in result.plans
        )


class TestExplain:
    def test_explain_select_runs_no_operator(self, db: ObliDB) -> None:
        plan = db.explain("SELECT * FROM t WHERE v = 10")
        plans = plan.physical_plans()
        select_plans = [p for p in plans if p.operator == "select"]
        assert len(select_plans) == 1
        assert select_plans[0].select_algorithm is not None
        assert select_plans[0].sizes["output"] == 1

    def test_explain_matches_execution_plan(self, db: ObliDB) -> None:
        sql = "SELECT * FROM t WHERE v < 40"
        explained = db.explain(sql).physical_plans()
        executed = db.sql(sql).plans
        explained_algorithms = [
            p.select_algorithm for p in explained if p.operator == "select"
        ]
        executed_algorithms = [
            p.select_algorithm for p in executed if p.operator == "select"
        ]
        assert explained_algorithms == executed_algorithms

    def test_explain_matches_execution_cache_key(self, db: ObliDB) -> None:
        """The compiled plan is the leaked value: explaining and running
        the same non-join query must produce identical QueryPlans."""
        sql = "SELECT * FROM t WHERE v < 40"
        explained = db.explain(sql)
        executed = db.sql(sql).plan
        assert executed is not None
        assert explained.cache_key == executed.cache_key

    def test_explain_index_point_query(self, db: ObliDB) -> None:
        plan = db.explain("SELECT * FROM t WHERE k = 3")
        assert any(p.operator == "index_range" for p in plan.physical_plans())

    def test_explain_join(self, db: ObliDB) -> None:
        db.sql("CREATE TABLE u (k INT) CAPACITY 8")
        db.sql("INSERT INTO u VALUES (1)")
        plans = db.explain("SELECT * FROM t JOIN u ON t.k = u.k").physical_plans()
        assert any(p.operator == "join" and p.join_algorithm is not None for p in plans)

    def test_explain_writes(self, db: ObliDB) -> None:
        for sql, operator in [
            ("INSERT INTO t VALUES (99, 1, 'x')", "insert"),
            ("UPDATE t SET v = 0 WHERE k = 1", "update"),
            ("DELETE FROM t WHERE k = 1", "delete"),
        ]:
            plan = db.explain(sql)
            assert plan.statement_kind == operator
            assert plan.physical_plans()[0].operator == operator

    def test_explain_does_not_modify(self, db: ObliDB) -> None:
        before = db.sql("SELECT COUNT(*) FROM t").scalar()
        db.explain("DELETE FROM t")
        assert db.sql("SELECT COUNT(*) FROM t").scalar() == before

    def test_explain_create_rejected(self, db: ObliDB) -> None:
        with pytest.raises(QueryError):
            db.explain("CREATE TABLE x (y INT)")


class TestExplainSQL:
    """``EXPLAIN <stmt>`` through the SQL surface (grammar + execution)."""

    def test_explain_statement_parses(self) -> None:
        from repro.engine import ExplainStatement

        statement = parse("EXPLAIN SELECT * FROM t WHERE v = 1")
        assert isinstance(statement, ExplainStatement)
        assert statement.target.table == "t"

    def test_explain_sql_returns_plan_rows(self, db: ObliDB) -> None:
        result = db.sql("EXPLAIN SELECT * FROM t WHERE v = 10")
        assert result.column_names == ["plan"]
        text = "\n".join(row[0] for row in result.rows)
        assert "select" in text and "scan" in text
        assert result.plan is not None
        assert result.plan.describe() == text

    def test_explain_sql_does_not_execute(self, db: ObliDB) -> None:
        before = db.sql("SELECT COUNT(*) FROM t").scalar()
        db.sql("EXPLAIN DELETE FROM t")
        assert db.sql("SELECT COUNT(*) FROM t").scalar() == before

    def test_explain_sql_not_wal_logged(self) -> None:
        db = ObliDB(cipher="null", seed=3, wal=True)
        db.sql("CREATE TABLE w (x INT) CAPACITY 8")
        logged = db.wal.count
        db.sql("EXPLAIN INSERT INTO w VALUES (1)")
        assert db.wal.count == logged

    def test_nested_explain_rejected(self) -> None:
        from repro.enclave import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            parse("EXPLAIN EXPLAIN SELECT * FROM t")

    def test_explain_create_rejected(self, db: ObliDB) -> None:
        with pytest.raises(QueryError):
            db.sql("EXPLAIN CREATE TABLE x (y INT)")

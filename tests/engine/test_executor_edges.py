"""Edge-case tests for the executor and SQL surface."""

from __future__ import annotations

import pytest

from repro import ObliDB, StorageMethod
from repro.engine import parse
from repro.storage import Schema, int_column, str_column


@pytest.fixture
def db() -> ObliDB:
    db = ObliDB(cipher="null", seed=31)
    db.sql("CREATE TABLE t (k INT, v INT, s STR(8)) CAPACITY 32 METHOD both KEY k")
    for i in range(10):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10}, 's{i}')")
    return db


class TestNegativeLiterals:
    def test_negative_int_predicate(self, db: ObliDB) -> None:
        db.sql("INSERT INTO t VALUES (-5, -50, 'neg')")
        result = db.sql("SELECT * FROM t WHERE k = -5")
        assert result.rows == [(-5, -50, "neg")]

    def test_negative_range_over_index(self, db: ObliDB) -> None:
        db.sql("INSERT INTO t VALUES (-3, 1, 'a')")
        db.sql("INSERT INTO t VALUES (-2, 2, 'b')")
        result = db.sql("SELECT k FROM t WHERE k >= -3 AND k <= -2")
        assert sorted(result.rows) == [(-3,), (-2,)]

    def test_negative_in_update_and_values(self, db: ObliDB) -> None:
        db.sql("UPDATE t SET v = -999 WHERE k = 1")
        assert db.sql("SELECT v FROM t WHERE k = 1").rows == [(-999,)]

    def test_bare_minus_rejected(self) -> None:
        from repro.enclave import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            parse("INSERT INTO t VALUES (-)")


class TestQueryEdges:
    def test_select_on_empty_table(self) -> None:
        db = ObliDB(cipher="null", seed=1)
        db.sql("CREATE TABLE e (x INT) CAPACITY 8")
        assert db.sql("SELECT * FROM e").rows == []
        assert db.sql("SELECT COUNT(*) FROM e").scalar() == 0
        assert db.sql("SELECT * FROM e WHERE x = 1 ORDER BY x LIMIT 5").rows == []

    def test_where_always_false(self, db: ObliDB) -> None:
        result = db.sql("SELECT * FROM t WHERE k > 100 AND k < 0")
        assert result.rows == []

    def test_where_always_true_tautology(self, db: ObliDB) -> None:
        result = db.sql("SELECT COUNT(*) FROM t WHERE k >= 0 OR k < 0")
        assert result.scalar() == 10

    def test_unknown_column_in_where(self, db: ObliDB) -> None:
        with pytest.raises(Exception):
            db.sql("SELECT * FROM t WHERE ghost = 1")

    def test_unknown_projection_column(self, db: ObliDB) -> None:
        with pytest.raises(Exception):
            db.sql("SELECT ghost FROM t")

    def test_update_no_matches(self, db: ObliDB) -> None:
        result = db.sql("UPDATE t SET v = 1 WHERE k = 999")
        assert result.affected == 0

    def test_delete_everything(self, db: ObliDB) -> None:
        result = db.sql("DELETE FROM t")
        assert result.affected == 10
        assert db.sql("SELECT COUNT(*) FROM t").scalar() == 0
        # Insert after mass delete still works through both representations.
        db.sql("INSERT INTO t VALUES (1, 2, 'x')")
        assert db.point_lookup("t", 1) == [(1, 2, "x")]

    def test_group_by_with_all_filtered(self, db: ObliDB) -> None:
        result = db.sql("SELECT s, COUNT(*) FROM t WHERE k > 99 GROUP BY s")
        assert result.rows == []

    def test_join_empty_side(self, db: ObliDB) -> None:
        db.sql("CREATE TABLE empty (k INT) CAPACITY 4")
        result = db.sql("SELECT * FROM t JOIN empty ON t.k = empty.k")
        assert result.rows == []

    def test_self_join_rejected_gracefully(self, db: ObliDB) -> None:
        """Self-joins aren't supported; both sides resolve to the same
        table and the join still produces set-correct output."""
        result = db.sql("SELECT COUNT(*) FROM t JOIN t ON k = k")
        assert result.scalar() == 10

    def test_point_query_string_key_index(self) -> None:
        db = ObliDB(cipher="null", seed=2)
        db.sql(
            "CREATE TABLE logs (date STR(10), n INT)"
            " CAPACITY 32 METHOD both KEY date"
        )
        for month in range(1, 10):
            db.sql(f"INSERT INTO logs VALUES ('2018-0{month}-01', {month})")
        result = db.sql("SELECT * FROM logs WHERE date = '2018-04-01'")
        assert result.rows == [("2018-04-01", 4)]
        result = db.sql(
            "SELECT n FROM logs WHERE date > '2018-03-15' AND date < '2018-06-15'"
        )
        assert sorted(result.rows) == [(4,), (5,), (6,)]

    def test_many_column_table(self) -> None:
        columns = [int_column(f"c{i}") for i in range(12)]
        db = ObliDB(cipher="null", seed=3)
        db.create_table("wide", Schema(columns), 8)
        row = tuple(range(12))
        db.insert("wide", row)
        assert db.sql("SELECT * FROM wide").rows == [row]
        assert db.sql("SELECT c11, c0 FROM wide").rows == [(11, 0)]

    def test_aggregate_on_string_column(self, db: ObliDB) -> None:
        result = db.sql("SELECT MIN(s), MAX(s) FROM t")
        assert result.rows == [("s0", "s9")]

    def test_capacity_full_insert_raises(self) -> None:
        db = ObliDB(cipher="null", seed=4)
        db.sql("CREATE TABLE small (x INT) CAPACITY 2")
        db.sql("INSERT INTO small VALUES (1)")
        db.sql("INSERT INTO small VALUES (2)")
        with pytest.raises(Exception):
            db.sql("INSERT INTO small VALUES (3)")


class TestOramKindPlumbing:
    @pytest.mark.parametrize("kind", ["path", "ring", "recursive"])
    def test_create_table_with_oram_kind(self, kind: str) -> None:
        db = ObliDB(cipher="null", seed=5)
        schema = Schema([int_column("k"), str_column("v", 8)])
        db.create_table(
            "t", schema, 64,
            method=StorageMethod.INDEXED, key_column="k", oram_kind=kind,
        )
        table = db.table("t")
        for i in range(20):
            table.insert((i, f"v{i}"))
        assert db.point_lookup("t", 11) == [(11, "v11")]
        result = db.sql("SELECT * FROM t WHERE k >= 5 AND k <= 7")
        assert sorted(result.rows) == [(5, "v5"), (6, "v6"), (7, "v7")]

    def test_unknown_oram_kind_rejected(self) -> None:
        db = ObliDB(cipher="null", seed=6)
        schema = Schema([int_column("k")])
        with pytest.raises(Exception):
            db.create_table(
                "t", schema, 8,
                method=StorageMethod.INDEXED, key_column="k", oram_kind="quantum",
            )

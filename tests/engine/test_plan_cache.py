"""Tests for the plan-keyed result cache (`repro.engine.plan_cache`).

Functional behaviour here; the trace-level acceptance criteria — a hit
performs zero untrusted-memory accesses, a miss leaves the trace identical
to a cache-less run — live in tests/security/test_engine_obliviousness.py.
"""

from __future__ import annotations

import pytest

from repro import ObliDB
from repro.engine import PlanCache


@pytest.fixture
def db() -> ObliDB:
    db = ObliDB(cipher="null", seed=21, result_cache_entries=8)
    db.sql("CREATE TABLE t (k INT, v INT) CAPACITY 32 METHOD both KEY k")
    for i in range(10):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    return db


class TestHitsAndMisses:
    def test_repeated_query_hits(self, db: ObliDB) -> None:
        sql = "SELECT * FROM t WHERE v >= 40"
        first = db.sql(sql)
        second = db.sql(sql)
        assert second.rows == first.rows
        assert second.column_names == first.column_names
        assert second.cost == {"cache_hits": 1}
        assert db.result_cache.hits == 1

    def test_hit_preserves_leaked_plan(self, db: ObliDB) -> None:
        sql = "SELECT * FROM t WHERE v >= 40"
        first = db.sql(sql)
        second = db.sql(sql)
        assert second.plan is not None
        assert second.plan.cache_key == first.plan.cache_key
        assert [p.describe() for p in second.plans] == [
            p.describe() for p in first.plans
        ]

    def test_different_parameters_do_not_collide(self, db: ObliDB) -> None:
        """Two queries with equal plans but different hidden parameters
        must be distinct cache entries."""
        a = db.sql("SELECT * FROM t WHERE k = 3")
        b = db.sql("SELECT * FROM t WHERE k = 7")
        assert a.rows != b.rows
        assert db.result_cache.hits == 0
        assert db.sql("SELECT * FROM t WHERE k = 3").rows == a.rows
        assert db.sql("SELECT * FROM t WHERE k = 7").rows == b.rows
        assert db.result_cache.hits == 2

    def test_hit_result_is_isolated(self, db: ObliDB) -> None:
        sql = "SELECT * FROM t WHERE k = 1"
        first = db.sql(sql)
        first.rows.append(("corrupted",))
        assert db.sql(sql).rows == [(1, 10)]

    def test_join_and_aggregate_queries_cache(self, db: ObliDB) -> None:
        db.sql("CREATE TABLE u (k INT) CAPACITY 8")
        db.sql("INSERT INTO u VALUES (3)")
        for sql in (
            "SELECT COUNT(*) FROM t WHERE v < 50",
            "SELECT k, COUNT(*) FROM t GROUP BY k",
            "SELECT * FROM t JOIN u ON t.k = u.k",
        ):
            first = db.sql(sql)
            assert db.sql(sql).rows == first.rows
        assert db.result_cache.hits == 3

    def test_explain_not_cached(self, db: ObliDB) -> None:
        db.sql("EXPLAIN SELECT * FROM t WHERE k = 1")
        db.sql("EXPLAIN SELECT * FROM t WHERE k = 1")
        assert db.result_cache.hits == 0


class TestInvalidation:
    def test_sql_write_invalidates(self, db: ObliDB) -> None:
        sql = "SELECT COUNT(*) FROM t"
        assert db.sql(sql).scalar() == 10
        db.sql("INSERT INTO t VALUES (10, 100)")
        assert db.sql(sql).scalar() == 11

    def test_update_and_delete_invalidate(self, db: ObliDB) -> None:
        sql = "SELECT v FROM t WHERE k = 2"
        assert db.sql(sql).rows == [(20,)]
        db.sql("UPDATE t SET v = 21 WHERE k = 2")
        assert db.sql(sql).rows == [(21,)]
        db.sql("DELETE FROM t WHERE k = 2")
        assert db.sql(sql).rows == []

    def test_typed_insert_invalidates(self, db: ObliDB) -> None:
        sql = "SELECT COUNT(*) FROM t"
        assert db.sql(sql).scalar() == 10
        db.insert("t", (11, 110))
        assert db.sql(sql).scalar() == 11
        db.insert_many("t", [(12, 120), (13, 130)])
        assert db.sql(sql).scalar() == 13

    def test_write_to_other_table_keeps_entries(self, db: ObliDB) -> None:
        db.sql("CREATE TABLE other (x INT) CAPACITY 8")
        sql = "SELECT COUNT(*) FROM t"
        db.sql(sql)
        db.sql("INSERT INTO other VALUES (1)")
        db.sql(sql)
        assert db.result_cache.hits == 1

    def test_join_entry_invalidated_by_either_side(self, db: ObliDB) -> None:
        db.sql("CREATE TABLE u (k INT) CAPACITY 8")
        db.sql("INSERT INTO u VALUES (3)")
        sql = "SELECT COUNT(*) FROM t JOIN u ON t.k = u.k"
        assert db.sql(sql).scalar() == 1
        db.sql("INSERT INTO u VALUES (4)")
        assert db.sql(sql).scalar() == 2
        db.sql("DELETE FROM t WHERE k = 4")
        assert db.sql(sql).scalar() == 1

    def test_drop_and_recreate_does_not_serve_stale(self, db: ObliDB) -> None:
        sql = "SELECT COUNT(*) FROM t"
        assert db.sql(sql).scalar() == 10
        db.drop_table("t")
        db.sql("CREATE TABLE t (k INT, v INT) CAPACITY 32 METHOD both KEY k")
        assert db.sql(sql).scalar() == 0


class TestBounds:
    def test_lru_eviction_bounds_entries(self) -> None:
        db = ObliDB(cipher="null", seed=5, result_cache_entries=4)
        db.sql("CREATE TABLE t (k INT) CAPACITY 16")
        for i in range(8):
            db.sql(f"INSERT INTO t VALUES ({i})")
        for i in range(6):
            db.sql(f"SELECT * FROM t WHERE k = {i}")
        assert len(db.result_cache) == 4
        # Oldest entries evicted, newest retained.
        db.sql("SELECT * FROM t WHERE k = 0")
        assert db.result_cache.hits == 0
        db.sql("SELECT * FROM t WHERE k = 5")
        assert db.result_cache.hits == 1

    def test_cache_disabled_by_default(self) -> None:
        db = ObliDB(cipher="null", seed=6)
        assert db.result_cache is None
        db.sql("CREATE TABLE t (k INT) CAPACITY 8")
        db.sql("INSERT INTO t VALUES (1)")
        first = db.sql("SELECT * FROM t")
        second = db.sql("SELECT * FROM t")
        assert first.rows == second.rows
        assert "cache_hits" not in second.cost

    def test_invalid_sizes_rejected(self) -> None:
        with pytest.raises(ValueError):
            PlanCache(0)


class TestUncacheableStatements:
    def test_address_repr_predicate_bypasses_cache(self, db: ObliDB) -> None:
        """A user-defined Predicate without a structural repr must not be
        cached: its default repr is a memory address, which allocator
        reuse could collide — the statement is executed fresh each time."""
        from repro.operators.predicate import Predicate

        class EvenKeys(Predicate):
            def compile(self, schema):
                k = schema.column_index("k")
                return lambda row: row[k] % 2 == 0

            def columns(self):
                return {"k"}

        first = db.select("t", where=EvenKeys())
        second = db.select("t", where=EvenKeys())
        assert first.rows == second.rows
        assert db.result_cache.hits == 0
        assert len(db.result_cache) == 0

    def test_padding_overflow_frees_output(self) -> None:
        """check_fits raising (real rows exceed the padded bound) is an
        expected error: the padded scratch must be released, not leaked."""
        from repro import PaddingConfig

        db = ObliDB(cipher="null", seed=7, padding=PaddingConfig(pad_rows=2, pad_groups=2))
        db.sql("CREATE TABLE p (k INT) CAPACITY 16")
        for i in range(8):
            db.sql(f"INSERT INTO p VALUES ({i})")
        regions_before = set(db.enclave.untrusted.region_names())
        for _ in range(3):
            with pytest.raises(Exception):
                db.sql("SELECT * FROM p WHERE k < 6")  # 6 rows > pad_rows=2
            with pytest.raises(Exception):
                db.sql("SELECT k, COUNT(*) FROM p GROUP BY k")  # 8 groups > 2
        assert set(db.enclave.untrusted.region_names()) == regions_before


class TestEntryIdentity:
    def test_entry_records_plan_identity(self, db: ObliDB) -> None:
        """Each cached entry pins the compiled plan's cache_key — the
        plan-identity digest the analysis layer uses — so entry identity
        and leaked-plan identity stay explicitly linked."""
        sql = "SELECT * FROM t WHERE v >= 40"
        result = db.sql(sql)
        entries = list(db.result_cache._entries.values())
        assert len(entries) == 1
        assert entries[0].plan_key == result.plan.cache_key
        assert entries[0].tables == ("t",)

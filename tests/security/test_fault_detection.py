"""Typed detection of host misbehaviour, with zero extra leakage.

Each test runs the same workload twice: on an honest host and on one
driven by a :class:`FaultPlan`.  The faulty run must (a) surface the
fault as its typed :class:`ObliDBError` subclass, and (b) leave an access
trace that is an exact *prefix* of the honest run's trace — all detection
work (MAC checks, rollback classification against prior revisions)
happens enclave-side, so the adversary observes zero additional accesses
before the abort.
"""

from __future__ import annotations

import pytest

from repro import FaultPlan, ObliDB
from repro.enclave import IntegrityError, RollbackError

FLAT = "table:t:flat"

CREATE = "CREATE TABLE t (id INT, name STR(8)) CAPACITY 4 METHOD flat"


def _db(plan: FaultPlan | None = None) -> ObliDB:
    return ObliDB(fault_plan=plan, retry=None, keep_trace_events=True)


def _events(db: ObliDB) -> list[tuple[str, str, int]]:
    return [(e.op, e.region, e.index) for e in db.enclave.trace.events]


def _assert_prefix(faulty: ObliDB, honest: ObliDB) -> None:
    honest_events = _events(honest)
    faulty_events = _events(faulty)
    assert 0 < len(faulty_events) <= len(honest_events)
    assert faulty_events == honest_events[: len(faulty_events)]


def _run_pair(steps, arm, error_type):
    """Run ``steps`` honestly and under a plan armed mid-workload.

    ``steps`` is a list of callables taking the database; ``arm`` is a
    ``(step_index, fn)`` pair — before executing ``steps[step_index]`` on
    the faulty run, ``fn(plan)`` arms the fault.  Arming touches only the
    plan object, never untrusted memory, so both runs issue identical
    accesses up to the moment of detection.
    """
    honest = _db()
    for step in steps:
        step(honest)
    plan = FaultPlan()
    faulty = _db(plan)
    arm_index, arm_fn = arm
    with pytest.raises(error_type):
        for i, step in enumerate(steps):
            if i == arm_index:
                arm_fn(plan)
            step(faulty)
    _assert_prefix(faulty, honest)


class TestTamper:
    def test_modified_block_is_integrity_error_with_no_extra_accesses(self):
        _run_pair(
            [
                lambda db: db.sql(CREATE),
                lambda db: db.sql("INSERT INTO t VALUES (1, 'a')"),
                lambda db: db.sql("SELECT * FROM t"),
            ],
            arm=(1, lambda plan: plan.tamper(FLAT, 1)),
            error_type=IntegrityError,
        )


class TestRollback:
    def test_stale_block_is_rollback_error_with_no_extra_accesses(self):
        # The write pass of the first INSERT saves the pre-overwrite copy;
        # the second INSERT's read pass is served the stale block.  The
        # classification re-verifies against prior revisions entirely
        # enclave-side — the prefix assertion proves zero extra reads.
        _run_pair(
            [
                lambda db: db.sql(CREATE),
                lambda db: db.sql("INSERT INTO t VALUES (1, 'a')"),
                lambda db: db.sql("INSERT INTO t VALUES (2, 'b')"),
            ],
            arm=(0, lambda plan: plan.serve_stale(FLAT, 0)),
            error_type=RollbackError,
        )

    def test_dropped_write_is_rollback_error_with_no_extra_accesses(self):
        # An acknowledged-but-discarded overwrite leaves the previous
        # revision in place: indistinguishable from (and classified as)
        # a rollback on the next read.
        _run_pair(
            [
                lambda db: db.sql(CREATE),
                lambda db: db.sql("INSERT INTO t VALUES (1, 'a')"),
                lambda db: db.sql("SELECT * FROM t"),
            ],
            arm=(1, lambda plan: plan.drop_write(FLAT, 0)),
            error_type=RollbackError,
        )


class TestRelocation:
    def test_duplicated_block_is_integrity_error_with_no_extra_accesses(self):
        # The host copies a freshly written block over another slot (a
        # shuffle).  The copy itself is host-side (untraced); the copied
        # block fails its (region, index) identity binding on read.
        _run_pair(
            [
                lambda db: db.sql(CREATE),
                lambda db: db.sql("INSERT INTO t FAST VALUES (1, 'a')"),
                lambda db: db.sql("SELECT * FROM t"),
            ],
            arm=(1, lambda plan: plan.duplicate_write(FLAT, 0, to_index=3)),
            error_type=IntegrityError,
        )


class TestTornWrite:
    def test_torn_batch_is_rollback_error_with_no_extra_accesses(self):
        # Only the first slot of a batched append pass reaches storage;
        # the surviving suffix slots still hold their previous revision,
        # so the next read classifies them as rolled back.
        _run_pair(
            [
                lambda db: db.sql(CREATE),
                lambda db: db.insert_many(
                    "t", [(1, "a"), (2, "b"), (3, "c")], fast=True
                ),
                lambda db: db.sql("SELECT * FROM t"),
            ],
            arm=(1, lambda plan: plan.torn_write(FLAT, keep=1)),
            error_type=RollbackError,
        )

"""Security experiment: the shm transport adds zero adversary-visible state.

The shared-memory segments are parent-created channels between two enclave
threads — a faster pipe, not a new untrusted surface.  The executable form
of that claim: running the same sharded pipelines (scan, shuffle, compact,
sharded hash join) with no pool, the inline executor, worker processes
over the pickle pipe, and worker processes over shared memory produces

* the identical composed access trace (digest and length),
* the identical cost counters (every untrusted read/write accounted), and
* the identical rows in the identical order,

while the shm run demonstrably used the segment path
(``transport_stats["shm_tasks"] > 0``) — i.e. the transport really ran
and really performed no extra adversary-visible untrusted accesses.
"""

from __future__ import annotations

import random

import pytest

from repro.enclave.enclave import Enclave
from repro.shard import (
    SHM_AVAILABLE,
    ShardedTable,
    ShardPool,
    ShardSpec,
    sharded_hash_join,
)
from repro.storage.schema import Schema, int_column, str_column

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="multiprocessing.shared_memory unavailable"
)

ROOT = b"\x5c" * 32
SCHEMA = Schema([int_column("k"), str_column("v", 12)])
RIGHT_SCHEMA = Schema([int_column("k"), str_column("w", 12)])
ROWS = [((i * 17) % 509, f"v{i}") for i in range(240)]
RIGHT_ROWS = [((i * 17) % 509, f"w{i}") for i in range(0, 240, 2)]


def observable(pool):
    """Run every sharded pipeline; return the full adversary view."""
    enclave = Enclave(key=ROOT, keep_trace_events=False)
    spec = ShardSpec("hash", 3, "k")
    table = ShardedTable(enclave, "t", SCHEMA, spec, ROWS)
    rows = table.scan_rows(pool=pool)
    table.shuffle(pool=pool, rng=random.Random(0xC0FFEE))
    table.compact(pool=pool)
    left = ShardedTable(enclave, "l", SCHEMA, spec, ROWS)
    right = ShardedTable(enclave, "r", RIGHT_SCHEMA, spec, RIGHT_ROWS)
    joined = sharded_hash_join(
        left, right, "k", "k", enclave.oblivious.free_bytes, pool=pool
    )
    return (
        enclave.trace.digest(),
        len(enclave.trace),
        enclave.cost.snapshot(),
        rows,
        joined,
    )


def test_shm_transport_performs_no_extra_untrusted_accesses():
    # Reference: the inline executor — the same task registry with no
    # process boundary, hence no transport at all.  (The no-pool variant
    # is pinned against pooled runs per-pipeline in
    # tests/shard/test_trace_compose.py; its grouped shuffle clean-up uses
    # a different — equally public — schedule, so it is not byte-comparable
    # to a 3-worker pool here.)
    with ShardPool(3, "authenticated", ROOT, backend="inline", quiet=True) as pool:
        reference = observable(pool)

    with ShardPool(
        3, "authenticated", ROOT, backend="process", transport="pipe", quiet=True
    ) as pool:
        assert observable(pool) == reference
        assert pool.transport_stats["shm_tasks"] == 0

    with ShardPool(
        3, "authenticated", ROOT, backend="process", transport="shm", quiet=True
    ) as pool:
        assert observable(pool) == reference
        # The segment path genuinely carried tasks — the equality above is
        # a statement about the shm transport, not about an idle fallback.
        assert pool.transport_stats["shm_tasks"] > 0

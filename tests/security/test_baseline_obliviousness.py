"""Trace checks for the re-implemented baselines.

The Figure 7/8 comparisons are only fair if our Opaque re-implementation is
itself oblivious (it is the paper's *secure* comparator) and if the naive
ORAM baseline doesn't accidentally leak either.
"""

from __future__ import annotations

import random

from repro.analysis import assert_indistinguishable, canonicalize, oram_regions_of
from repro.baselines import NaiveORAMTable, OpaqueSystem
from repro.enclave import Enclave
from repro.operators import AggregateFunction, AggregateSpec, Comparison
from repro.storage import Schema, int_column

SCHEMA = Schema([int_column("k"), int_column("v")])


def build_opaque(seed: int) -> OpaqueSystem:
    system = OpaqueSystem(
        oblivious_memory_bytes=1 << 14, cipher="null", keep_trace_events=True
    )
    system.create_table("t", SCHEMA, 16)
    rng = random.Random(seed)
    system.load_rows("t", [(rng.randrange(100), i) for i in range(16)])
    return system


class TestOpaqueObliviousness:
    def test_filter_trace_independent_of_data_and_threshold(self) -> None:
        traces = []
        for seed, threshold in ((1, 10), (2, 90), (3, 50)):
            system = build_opaque(seed)
            system.enclave.trace.clear()
            system.filter("t", Comparison("k", "<", threshold)).free()
            traces.append(
                canonicalize(
                    system.enclave.trace.events, oram_regions_of(system.enclave)
                )
            )
        assert_indistinguishable(traces)

    def test_group_by_trace_independent_of_data(self) -> None:
        traces = []
        specs = [AggregateSpec(AggregateFunction.SUM, "v")]
        for seed in (4, 5):
            system = build_opaque(seed)
            system.enclave.trace.clear()
            system.group_by("t", "k", specs).free()
            traces.append(
                canonicalize(
                    system.enclave.trace.events, oram_regions_of(system.enclave)
                )
            )
        assert_indistinguishable(traces)

    def test_join_trace_independent_of_overlap(self) -> None:
        traces = []
        for seed in (6, 7):
            system = OpaqueSystem(
                oblivious_memory_bytes=1 << 14, cipher="null", keep_trace_events=True
            )
            system.create_table("l", SCHEMA, 8)
            system.create_table("r", SCHEMA, 8)
            rng = random.Random(seed)
            system.load_rows("l", [(i, i) for i in range(8)])
            system.load_rows("r", [(rng.randrange(50), i) for i in range(8)])
            system.enclave.trace.clear()
            system.join("l", "r", "k", "k").free()
            traces.append(
                canonicalize(
                    system.enclave.trace.events, oram_regions_of(system.enclave)
                )
            )
        assert_indistinguishable(traces)


class TestNaiveORAMObliviousness:
    def test_select_trace_shape_independent_of_matches(self) -> None:
        """One ORAM op per row whether it matches or not: equal-output-size
        selects over different data are indistinguishable."""
        traces = []
        for seed in (8, 9):
            enclave = Enclave(
                oblivious_memory_bytes=1 << 20, cipher="null", keep_trace_events=True
            )
            table = NaiveORAMTable(enclave, SCHEMA, 12, rng=random.Random(1))
            rng = random.Random(seed)
            positions = set(rng.sample(range(12), 3))
            for index in range(12):
                value = 1 if index in positions else rng.randrange(2, 99)
                table.insert((value, index))
            enclave.trace.clear()
            rows = table.select(Comparison("k", "=", 1))
            assert len(rows) == 3
            traces.append(
                canonicalize(enclave.trace.events, oram_regions_of(enclave))
            )
            table.free()
        assert_indistinguishable(traces)

"""End-to-end obliviousness: full SQL queries through the engine.

The operator-level suite checks each algorithm in isolation; these tests
check the composed engine — planner scan, operator execution, intermediate
allocation — through `ObliDB.sql`, asserting that queries with identical
declared leakage produce indistinguishable traces *end to end* (the paper's
"the whole engine runs obliviously so long as each of the operators is
individually oblivious", Section 4).
"""

from __future__ import annotations

import random

from repro import ObliDB, StorageMethod
from repro.analysis import assert_indistinguishable, canonicalize, oram_regions_of
from repro.storage import Schema, int_column, str_column

SCHEMA_SQL = (
    "CREATE TABLE t (k INT, v INT, s STR(8)) CAPACITY 48 METHOD both KEY k"
)


def build_db(seed: int) -> ObliDB:
    """A database whose payload values differ per seed; keys 0..29."""
    db = ObliDB(
        cipher="null", keep_trace_events=True, allow_continuous=False, seed=1
    )
    db.sql(SCHEMA_SQL)
    rng = random.Random(seed)
    for key in range(30):
        db.sql(f"INSERT INTO t VALUES ({key}, {rng.randrange(1000)}, 's{key}')")
    return db


def trace_of(db: ObliDB, sql: str):
    db.enclave.trace.clear()
    result = db.sql(sql)
    return (
        canonicalize(db.enclave.trace.events, oram_regions_of(db.enclave)),
        result,
    )


class TestPointQueries:
    def test_different_keys_same_trace(self) -> None:
        """Point lookups for different keys are indistinguishable — the
        engine hides *which* key was requested (Section 2.3)."""
        traces = []
        for key in (3, 17, 28):
            db = build_db(seed=5)
            trace, result = trace_of(db, f"SELECT * FROM t WHERE k = {key}")
            assert len(result.rows) == 1
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_different_data_same_trace(self) -> None:
        traces = []
        for seed in (1, 2, 3):
            db = build_db(seed=seed)
            trace, _ = trace_of(db, "SELECT * FROM t WHERE k = 9")
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_repeated_key_indistinguishable_from_fresh(self) -> None:
        """Asking the same key twice looks like asking two different keys:
        no hot-key side channel."""
        db_repeat = build_db(seed=4)
        trace_of(db_repeat, "SELECT * FROM t WHERE k = 5")
        repeat, _ = trace_of(db_repeat, "SELECT * FROM t WHERE k = 5")

        db_fresh = build_db(seed=4)
        trace_of(db_fresh, "SELECT * FROM t WHERE k = 11")
        fresh, _ = trace_of(db_fresh, "SELECT * FROM t WHERE k = 23")
        assert_indistinguishable([repeat, fresh])


class TestRangeAndAggregates:
    def test_equal_width_ranges_same_trace(self) -> None:
        traces = []
        for low in (2, 11, 20):
            db = build_db(seed=6)
            sql = f"SELECT * FROM t WHERE k >= {low} AND k <= {low + 4}"
            trace, result = trace_of(db, sql)
            assert len(result.rows) == 5
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_aggregate_hides_predicate_parameters(self) -> None:
        """Fused aggregates leak nothing about selectivity: thresholds that
        match 0% and 100% of rows give identical traces."""
        traces = []
        for threshold in (-1, 10_000):
            db = build_db(seed=7)
            trace, _ = trace_of(
                db, f"SELECT COUNT(*), SUM(v) FROM t WHERE v < {threshold}"
            )
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_group_by_same_group_count_same_trace(self) -> None:
        traces = []
        for seed in (8, 9):
            db = ObliDB(cipher="null", keep_trace_events=True, seed=1)
            db.sql("CREATE TABLE g (c INT, x INT) CAPACITY 16")
            rng = random.Random(seed)
            groups = rng.sample(range(100), 4)
            for i in range(12):
                db.sql(f"INSERT INTO g VALUES ({groups[i % 4]}, {rng.randrange(50)})")
            trace, _ = trace_of(db, "SELECT c, SUM(x) FROM g GROUP BY c")
            traces.append(trace)
        assert_indistinguishable(traces)


class TestWrites:
    def test_update_parameters_hidden(self) -> None:
        """Updates touching different rows (same match count) and writing
        different values are indistinguishable."""
        traces = []
        for key, value in ((4, 111), (21, 999)):
            db = build_db(seed=10)
            trace, result = trace_of(
                db, f"UPDATE t SET v = {value} WHERE k = {key}"
            )
            assert result.affected == 1
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_delete_parameters_hidden(self) -> None:
        traces = []
        for key in (2, 27):
            db = build_db(seed=11)
            trace, result = trace_of(db, f"DELETE FROM t WHERE k = {key}")
            assert result.affected == 1
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_insert_values_hidden(self) -> None:
        traces = []
        for value in (0, 987654):
            db = build_db(seed=12)
            trace, _ = trace_of(db, f"INSERT INTO t VALUES (40, {value}, 'zz')")
            traces.append(trace)
        assert_indistinguishable(traces)


class TestPaddingModeEndToEnd:
    def test_selectivities_indistinguishable_under_padding(self) -> None:
        """Padding mode's whole point: a query matching 1 row and a query
        matching 20 rows leave identical traces."""
        from repro import PaddingConfig

        traces = []
        for threshold in (1, 20):
            db = ObliDB(
                cipher="null",
                keep_trace_events=True,
                padding=PaddingConfig(pad_rows=25, pad_groups=8),
                seed=1,
            )
            db.sql("CREATE TABLE p (k INT) CAPACITY 32")
            for key in range(24):
                db.sql(f"INSERT INTO p VALUES ({key})")
            trace, result = trace_of(db, f"SELECT * FROM p WHERE k < {threshold}")
            assert len(result.rows) == threshold
            traces.append(trace)
        assert_indistinguishable(traces)

"""End-to-end obliviousness: full SQL queries through the engine.

The operator-level suite checks each algorithm in isolation; these tests
check the composed engine — planner scan, operator execution, intermediate
allocation — through `ObliDB.sql`, asserting that queries with identical
declared leakage produce indistinguishable traces *end to end* (the paper's
"the whole engine runs obliviously so long as each of the operators is
individually oblivious", Section 4).
"""

from __future__ import annotations

import random

from repro import ObliDB
from repro.analysis import (
    assert_indistinguishable,
    assert_same_leakage,
    canonicalize,
    oram_regions_of,
    real_query_trace,
)

SCHEMA_SQL = (
    "CREATE TABLE t (k INT, v INT, s STR(8)) CAPACITY 48 METHOD both KEY k"
)


def build_db(seed: int) -> ObliDB:
    """A database whose payload values differ per seed; keys 0..29."""
    db = ObliDB(
        cipher="null", keep_trace_events=True, allow_continuous=False, seed=1
    )
    db.sql(SCHEMA_SQL)
    rng = random.Random(seed)
    for key in range(30):
        db.sql(f"INSERT INTO t VALUES ({key}, {rng.randrange(1000)}, 's{key}')")
    return db


def trace_of(db: ObliDB, sql: str):
    db.enclave.trace.clear()
    result = db.sql(sql)
    return (
        canonicalize(db.enclave.trace.events, oram_regions_of(db.enclave)),
        result,
    )


class TestPointQueries:
    def test_different_keys_same_trace(self) -> None:
        """Point lookups for different keys are indistinguishable — the
        engine hides *which* key was requested (Section 2.3)."""
        traces = []
        for key in (3, 17, 28):
            db = build_db(seed=5)
            trace, result = trace_of(db, f"SELECT * FROM t WHERE k = {key}")
            assert len(result.rows) == 1
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_different_data_same_trace(self) -> None:
        traces = []
        for seed in (1, 2, 3):
            db = build_db(seed=seed)
            trace, _ = trace_of(db, "SELECT * FROM t WHERE k = 9")
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_repeated_key_indistinguishable_from_fresh(self) -> None:
        """Asking the same key twice looks like asking two different keys:
        no hot-key side channel."""
        db_repeat = build_db(seed=4)
        trace_of(db_repeat, "SELECT * FROM t WHERE k = 5")
        repeat, _ = trace_of(db_repeat, "SELECT * FROM t WHERE k = 5")

        db_fresh = build_db(seed=4)
        trace_of(db_fresh, "SELECT * FROM t WHERE k = 11")
        fresh, _ = trace_of(db_fresh, "SELECT * FROM t WHERE k = 23")
        assert_indistinguishable([repeat, fresh])


class TestRangeAndAggregates:
    def test_equal_width_ranges_same_trace(self) -> None:
        traces = []
        for low in (2, 11, 20):
            db = build_db(seed=6)
            sql = f"SELECT * FROM t WHERE k >= {low} AND k <= {low + 4}"
            trace, result = trace_of(db, sql)
            assert len(result.rows) == 5
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_aggregate_hides_predicate_parameters(self) -> None:
        """Fused aggregates leak nothing about selectivity: thresholds that
        match 0% and 100% of rows give identical traces."""
        traces = []
        for threshold in (-1, 10_000):
            db = build_db(seed=7)
            trace, _ = trace_of(
                db, f"SELECT COUNT(*), SUM(v) FROM t WHERE v < {threshold}"
            )
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_group_by_same_group_count_same_trace(self) -> None:
        traces = []
        for seed in (8, 9):
            db = ObliDB(cipher="null", keep_trace_events=True, seed=1)
            db.sql("CREATE TABLE g (c INT, x INT) CAPACITY 16")
            rng = random.Random(seed)
            groups = rng.sample(range(100), 4)
            for i in range(12):
                db.sql(f"INSERT INTO g VALUES ({groups[i % 4]}, {rng.randrange(50)})")
            trace, _ = trace_of(db, "SELECT c, SUM(x) FROM g GROUP BY c")
            traces.append(trace)
        assert_indistinguishable(traces)


class TestWrites:
    def test_update_parameters_hidden(self) -> None:
        """Updates touching different rows (same match count) and writing
        different values are indistinguishable."""
        traces = []
        for key, value in ((4, 111), (21, 999)):
            db = build_db(seed=10)
            trace, result = trace_of(
                db, f"UPDATE t SET v = {value} WHERE k = {key}"
            )
            assert result.affected == 1
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_delete_parameters_hidden(self) -> None:
        traces = []
        for key in (2, 27):
            db = build_db(seed=11)
            trace, result = trace_of(db, f"DELETE FROM t WHERE k = {key}")
            assert result.affected == 1
            traces.append(trace)
        assert_indistinguishable(traces)

    def test_insert_values_hidden(self) -> None:
        traces = []
        for value in (0, 987654):
            db = build_db(seed=12)
            trace, _ = trace_of(db, f"INSERT INTO t VALUES (40, {value}, 'zz')")
            traces.append(trace)
        assert_indistinguishable(traces)


class TestPlanLeakageContract:
    """The IR-level statement of obliviousness: equal compiled QueryPlans
    (equal ``cache_key``) must imply bit-identical canonical traces."""

    def test_equal_plans_imply_equal_traces(self) -> None:
        queries = [
            "SELECT * FROM t WHERE k = 3",
            "SELECT * FROM t WHERE k = 17",
            "SELECT * FROM t WHERE k = 28",
        ]
        traces, plans = [], []
        for sql in queries:
            db = build_db(seed=13)
            trace, plan = real_query_trace(db, sql)
            traces.append(trace)
            plans.append(plan)
        assert_same_leakage(plans)
        assert_indistinguishable(traces)

    def test_leakage_helper_detects_different_plans(self) -> None:
        db = build_db(seed=14)
        _, narrow = real_query_trace(db, "SELECT * FROM t WHERE k = 3")
        _, wide = real_query_trace(
            db, "SELECT * FROM t WHERE k >= 3 AND k <= 9"
        )
        try:
            assert_same_leakage([narrow, wide])
        except AssertionError:
            pass
        else:
            raise AssertionError("different plans must not compare equal")

    def test_write_plans_equal_and_traces_equal(self) -> None:
        traces, plans = [], []
        for value in (1, 99999):
            db = build_db(seed=15)
            trace, plan = real_query_trace(
                db, f"UPDATE t SET v = {value} WHERE k = 8"
            )
            traces.append(trace)
            plans.append(plan)
        assert_same_leakage(plans)
        assert_indistinguishable(traces)


class TestResultCacheTraces:
    """Trace-level acceptance criteria for the opt-in result cache."""

    def build_cached_db(self, seed: int, entries: int = 8) -> ObliDB:
        db = ObliDB(
            cipher="null",
            keep_trace_events=True,
            allow_continuous=False,
            seed=1,
            result_cache_entries=entries,
        )
        db.sql(SCHEMA_SQL)
        rng = random.Random(seed)
        for key in range(30):
            db.sql(f"INSERT INTO t VALUES ({key}, {rng.randrange(1000)}, 's{key}')")
        return db

    def test_cache_hit_performs_zero_untrusted_accesses(self) -> None:
        db = self.build_cached_db(seed=16)
        sql = "SELECT * FROM t WHERE k = 5"
        first = db.sql(sql)
        db.enclave.trace.clear()
        second = db.sql(sql)
        assert second.rows == first.rows
        assert len(db.enclave.trace.events) == 0
        assert second.cost == {"cache_hits": 1}

    def test_cache_miss_trace_identical_to_uncached(self) -> None:
        """Enabling the cache must not change what a miss looks like: the
        first execution's trace equals the trace of the same query on an
        identically built cache-less database."""
        for sql in (
            "SELECT * FROM t WHERE k = 9",
            "SELECT COUNT(*), SUM(v) FROM t WHERE v < 500",
            "SELECT * FROM t WHERE k >= 4 AND k <= 8",
        ):
            cached_db = self.build_cached_db(seed=17)
            uncached_db = build_db(seed=17)
            cached_trace, cached_plan = real_query_trace(cached_db, sql)
            uncached_trace, uncached_plan = real_query_trace(uncached_db, sql)
            assert_same_leakage([cached_plan, uncached_plan])
            assert_indistinguishable([cached_trace, uncached_trace])

    def test_invalidated_entry_reruns_with_unchanged_trace(self) -> None:
        """After a write invalidates an entry, the re-execution's trace is
        again indistinguishable from a fresh uncached run."""
        sql = "SELECT * FROM t WHERE k = 5"
        cached_db = self.build_cached_db(seed=18)
        cached_db.sql(sql)  # populate
        cached_db.sql("UPDATE t SET v = 7 WHERE k = 5")  # invalidate

        uncached_db = build_db(seed=18)
        uncached_db.sql(sql)
        uncached_db.sql("UPDATE t SET v = 7 WHERE k = 5")

        rerun_cached, _ = real_query_trace(cached_db, sql)
        rerun_uncached, _ = real_query_trace(uncached_db, sql)
        assert_indistinguishable([rerun_cached, rerun_uncached])


class TestPaddingModeEndToEnd:
    def test_selectivities_indistinguishable_under_padding(self) -> None:
        """Padding mode's whole point: a query matching 1 row and a query
        matching 20 rows leave identical traces."""
        from repro import PaddingConfig

        traces = []
        for threshold in (1, 20):
            db = ObliDB(
                cipher="null",
                keep_trace_events=True,
                padding=PaddingConfig(pad_rows=25, pad_groups=8),
                seed=1,
            )
            db.sql("CREATE TABLE p (k INT) CAPACITY 32")
            for key in range(24):
                db.sql(f"INSERT INTO p VALUES ({key})")
            trace, result = trace_of(db, f"SELECT * FROM p WHERE k < {threshold}")
            assert len(result.rows) == threshold
            traces.append(trace)
        assert_indistinguishable(traces)

"""Security experiments: operator traces must depend only on declared leakage.

Each test runs the same operator over *different data and/or different query
parameters* chosen so the declared leakage (input size, output size, chosen
plan) is identical, then asserts the canonical untrusted-memory traces are
indistinguishable.  This is the executable form of the per-operator security
arguments in Section 4.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import assert_indistinguishable, canonicalize, oram_regions_of
from repro.enclave import Enclave
from repro.operators import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    aggregate,
    continuous_select,
    group_by_aggregate,
    hash_join,
    hash_select,
    large_select,
    opaque_join,
    small_select,
    zero_om_join,
)
from repro.storage import FlatStorage, Schema, int_column

SCHEMA = Schema([int_column("x"), int_column("payload")])


def build_table(enclave: Enclave, capacity: int, match_positions: set[int], seed: int) -> FlatStorage:
    """A table where rows at ``match_positions`` satisfy x = 1."""
    rng = random.Random(seed)
    table = FlatStorage(enclave, SCHEMA, capacity)
    for index in range(capacity):
        value = 1 if index in match_positions else rng.randrange(2, 1000)
        table.fast_insert((value, rng.randrange(10_000)))
    return table


def trace_of(run, positions: set[int], seed: int, capacity: int = 24):
    enclave = Enclave(
        oblivious_memory_bytes=1 << 16, cipher="null", keep_trace_events=True
    )
    table = build_table(enclave, capacity, positions, seed)
    enclave.trace.clear()
    run(table)
    return canonicalize(enclave.trace.events, oram_regions_of(enclave))


PREDICATE = Comparison("x", "=", 1)


class TestSelectObliviousness:
    def test_small_select_data_independent(self) -> None:
        """Same |T|, |R|: different matching positions, different payloads."""
        runs = [
            ({0, 5, 9}, 1),
            ({2, 11, 23}, 2),
            ({21, 22, 23}, 3),
        ]
        traces = [
            trace_of(lambda t: small_select(t, PREDICATE, 3, 4), pos, seed)
            for pos, seed in runs
        ]
        assert_indistinguishable(traces)

    def test_large_select_data_independent(self) -> None:
        runs = [({i for i in range(20)}, 1), ({i for i in range(2, 22)}, 9)]
        traces = [
            trace_of(lambda t: large_select(t, PREDICATE), pos, seed)
            for pos, seed in runs
        ]
        assert_indistinguishable(traces)

    def test_continuous_select_data_independent(self) -> None:
        """Different contiguous segments of equal length."""
        runs = [(set(range(0, 6)), 1), (set(range(10, 16)), 2), (set(range(18, 24)), 3)]
        traces = [
            trace_of(lambda t: continuous_select(t, PREDICATE, 6), pos, seed)
            for pos, seed in runs
        ]
        assert_indistinguishable(traces)

    def test_hash_select_data_independent(self) -> None:
        runs = [({1, 8, 15, 22}, 4), ({0, 3, 17, 23}, 5)]
        traces = [
            trace_of(lambda t: hash_select(t, PREDICATE, 4), pos, seed)
            for pos, seed in runs
        ]
        assert_indistinguishable(traces)

    def test_different_output_sizes_are_distinguishable(self) -> None:
        """Sanity check of the methodology: output size IS leaked, so traces
        with different |R| must differ."""
        small_output = trace_of(lambda t: small_select(t, PREDICATE, 2, 4), {0, 1}, 1)
        large_output = trace_of(
            lambda t: small_select(t, PREDICATE, 5, 4), {0, 1, 2, 3, 4}, 1
        )
        assert not small_output.matches(large_output)


class TestAggregateObliviousness:
    def test_plain_aggregate_data_independent(self) -> None:
        specs = [AggregateSpec(AggregateFunction.SUM, "payload")]
        traces = [
            trace_of(lambda t: aggregate(t, specs), pos, seed)
            for pos, seed in [({1, 2}, 1), ({5, 9}, 7)]
        ]
        assert_indistinguishable(traces)

    def test_fused_aggregate_hides_selectivity(self) -> None:
        """The fused operator's trace is identical whether the predicate
        matches nothing or everything — selectivity is NOT leaked."""
        specs = [AggregateSpec(AggregateFunction.COUNT)]
        none_match = trace_of(lambda t: aggregate(t, specs, PREDICATE), set(), 1)
        all_match = trace_of(
            lambda t: aggregate(t, specs, PREDICATE), set(range(24)), 2
        )
        assert none_match.matches(all_match)

    def test_group_by_data_independent_same_group_count(self) -> None:
        def run(table: FlatStorage) -> None:
            out = group_by_aggregate(
                table, "x", [AggregateSpec(AggregateFunction.COUNT)]
            )
            out.free()

        traces = []
        for seed in (1, 2):
            enclave = Enclave(
                oblivious_memory_bytes=1 << 16, cipher="null", keep_trace_events=True
            )
            table = FlatStorage(enclave, SCHEMA, 16)
            rng = random.Random(seed)
            # Always exactly 4 groups of 3 rows; group ids differ by seed.
            groups = rng.sample(range(100), 4)
            for group in groups:
                for _ in range(3):
                    table.fast_insert((group, rng.randrange(1000)))
            enclave.trace.clear()
            run(table)
            traces.append(canonicalize(enclave.trace.events, oram_regions_of(enclave)))
        assert_indistinguishable(traces)


class TestJoinObliviousness:
    @pytest.mark.parametrize(
        "join_fn,kwargs",
        [
            (hash_join, {"oblivious_memory_bytes": 256}),
            (opaque_join, {"oblivious_memory_bytes": 1024}),
            (zero_om_join, {}),
        ],
    )
    def test_join_trace_depends_only_on_sizes(self, join_fn, kwargs) -> None:
        """Joins of equal-sized inputs with different contents/selectivity
        produce identical traces (the Section 5 property the join planner
        relies on)."""
        traces = []
        for seed in (1, 2, 3):
            enclave = Enclave(
                oblivious_memory_bytes=1 << 16, cipher="null", keep_trace_events=True
            )
            rng = random.Random(seed)
            left = FlatStorage(enclave, SCHEMA, 8)
            right = FlatStorage(enclave, SCHEMA, 16)
            for i in range(8):
                left.fast_insert((rng.randrange(50), i))
            for i in range(16):
                right.fast_insert((rng.randrange(50), i))
            enclave.trace.clear()
            out = join_fn(left, right, "x", "x", **kwargs)
            traces.append(canonicalize(enclave.trace.events, oram_regions_of(enclave)))
            out.free()
        assert_indistinguishable(traces)


class TestWriteObliviousness:
    def test_flat_insert_trace_fixed(self) -> None:
        """Inserting into a full-ish vs empty-ish table: same trace."""
        traces = []
        for fill, seed in ((2, 1), (20, 2)):
            enclave = Enclave(cipher="null", keep_trace_events=True)
            table = FlatStorage(enclave, SCHEMA, 24)
            rng = random.Random(seed)
            for _ in range(fill):
                table.fast_insert((rng.randrange(1000), rng.randrange(1000)))
            enclave.trace.clear()
            table.insert((999, 0))
            traces.append(canonicalize(enclave.trace.events))
        assert_indistinguishable(traces)

    def test_flat_update_trace_independent_of_matches(self) -> None:
        traces = []
        for positions, seed in ((set(), 1), (set(range(24)), 2)):
            enclave = Enclave(cipher="null", keep_trace_events=True)
            table = build_table(enclave, 24, positions, seed)
            enclave.trace.clear()
            table.update(lambda row: row[0] == 1, lambda row: (row[0], 0))
            traces.append(canonicalize(enclave.trace.events))
        assert_indistinguishable(traces)

    def test_flat_delete_trace_independent_of_matches(self) -> None:
        traces = []
        for positions, seed in (({3}, 1), (set(range(10)), 2)):
            enclave = Enclave(cipher="null", keep_trace_events=True)
            table = build_table(enclave, 24, positions, seed)
            enclave.trace.clear()
            table.delete(lambda row: row[0] == 1)
            traces.append(canonicalize(enclave.trace.events))
        assert_indistinguishable(traces)

    def test_btree_insert_trace_shape_independent_of_key(self) -> None:
        """Index inserts at fixed height: same canonical (level) shape."""
        from repro.storage import IndexedStorage

        traces = []
        for key, seed in ((0, 1), (500, 1), (123456, 1)):
            enclave = Enclave(
                oblivious_memory_bytes=1 << 22, cipher="null", keep_trace_events=True
            )
            schema = Schema([int_column("key"), int_column("v")])
            index = IndexedStorage(enclave, schema, "key", 300, rng=random.Random(seed))
            for base_key in range(64):
                index.insert((base_key * 2 + 1, 0))
            height = index.tree.height
            enclave.trace.clear()
            index.insert((key * 2, 0))  # even keys: never duplicates
            assert index.tree.height == height
            traces.append(
                canonicalize(enclave.trace.events, oram_regions_of(enclave))
            )
        assert_indistinguishable(traces)

    def test_btree_point_lookup_hit_vs_miss(self) -> None:
        from repro.storage import IndexedStorage

        traces = []
        for key in (10, 11):  # 10 exists, 11 does not
            enclave = Enclave(
                oblivious_memory_bytes=1 << 22, cipher="null", keep_trace_events=True
            )
            schema = Schema([int_column("key"), int_column("v")])
            index = IndexedStorage(enclave, schema, "key", 200, rng=random.Random(5))
            for base_key in range(0, 100, 2):
                index.insert((base_key, 0))
            enclave.trace.clear()
            index.point_lookup(key)
            traces.append(
                canonicalize(enclave.trace.events, oram_regions_of(enclave))
            )
        assert_indistinguishable(traces)

"""Shared fixtures for the ObliDB reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.storage import Schema, int_column, str_column


@pytest.fixture
def enclave() -> Enclave:
    """A fresh enclave with a generous budget and real encryption."""
    return Enclave(oblivious_memory_bytes=1 << 24, keep_trace_events=True)


@pytest.fixture
def fast_enclave() -> Enclave:
    """A fresh enclave with the cost-only cipher, for heavier tests."""
    return Enclave(
        oblivious_memory_bytes=1 << 24, cipher="null", keep_trace_events=True
    )


@pytest.fixture
def kv_schema() -> Schema:
    """A small key/value schema used across storage and operator tests."""
    return Schema([int_column("key"), str_column("value", 16)])


@pytest.fixture
def wide_schema() -> Schema:
    """An analytics-style schema with id, category, and a measure."""
    return Schema(
        [
            int_column("id"),
            int_column("category"),
            int_column("measure"),
            str_column("label", 12),
        ]
    )


@pytest.fixture
def rng() -> random.Random:
    """Deterministic randomness for reproducible tests."""
    return random.Random(0xDB)

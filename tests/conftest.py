"""Shared fixtures for the ObliDB reproduction test suite."""

from __future__ import annotations

import hashlib
import os
import random

import pytest

from repro.enclave import Enclave
from repro.storage import Schema, int_column, str_column


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "serving: concurrent serving-layer suite (threaded; CI can shard "
        "it with `-m serving` / `-m 'not serving'`)",
    )


@pytest.fixture
def enclave() -> Enclave:
    """A fresh enclave with a generous budget and real encryption."""
    return Enclave(oblivious_memory_bytes=1 << 24, keep_trace_events=True)


@pytest.fixture
def fast_enclave() -> Enclave:
    """A fresh enclave with the cost-only cipher, for heavier tests."""
    return Enclave(
        oblivious_memory_bytes=1 << 24, cipher="null", keep_trace_events=True
    )


@pytest.fixture
def kv_schema() -> Schema:
    """A small key/value schema used across storage and operator tests."""
    return Schema([int_column("key"), str_column("value", 16)])


@pytest.fixture
def wide_schema() -> Schema:
    """An analytics-style schema with id, category, and a measure."""
    return Schema(
        [
            int_column("id"),
            int_column("category"),
            int_column("measure"),
            str_column("label", 12),
        ]
    )


@pytest.fixture
def rng() -> random.Random:
    """Deterministic randomness for reproducible tests."""
    return random.Random(0xDB)


@pytest.fixture
def schedule_rng(request) -> random.Random:
    """Pinned per-test RNG for concurrency-test schedules.

    The seed is derived from the test's node id (stable across runs and
    machines — ``hash()`` is salted per process, so a digest is used) and
    printed so a failing interleaving can be replayed exactly: rerun with
    ``SCHEDULE_SEED=<seed>`` to override the derivation, or with ``-s`` to
    watch the schedule.  Concurrency tests must draw every schedule
    decision (client think-time, statement order, key choices) from this
    RNG and nowhere else.
    """
    env = os.environ.get("SCHEDULE_SEED")
    if env is not None:
        seed = int(env)
    else:
        digest = hashlib.blake2b(
            request.node.nodeid.encode(), digest_size=8
        ).hexdigest()
        seed = int(digest, 16)
    print(f"[schedule] SCHEDULE_SEED={seed} (env SCHEDULE_SEED replays it)")
    return random.Random(seed)

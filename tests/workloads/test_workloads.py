"""Unit tests for the workload generators."""

from __future__ import annotations

import pytest

from repro import ObliDB, StorageMethod
from repro.workloads import (
    CFPB_SCHEMA,
    KV_SCHEMA,
    RANKINGS_SCHEMA,
    USERVISITS_SCHEMA,
    WORKLOADS,
    complaint_rows,
    generate,
    kv_rows,
    run_workload,
    shuffled,
    wide_rows,
)
from repro.workloads.bdb import Q1_SELECTIVITY, Q3_DATE_SELECTIVITY


class TestBDBGenerator:
    def test_deterministic(self) -> None:
        a = generate(rankings_rows=100, uservisits_rows=100, seed=1)
        b = generate(rankings_rows=100, uservisits_rows=100, seed=1)
        assert a.rankings == b.rankings
        assert a.uservisits == b.uservisits

    def test_schemas_validate(self) -> None:
        data = generate(rankings_rows=50, uservisits_rows=50)
        for row in data.rankings:
            RANKINGS_SCHEMA.validate_row(row)
        for row in data.uservisits:
            USERVISITS_SCHEMA.validate_row(row)

    def test_q1_selectivity(self) -> None:
        data = generate(rankings_rows=1000, uservisits_rows=10)
        matching = sum(1 for row in data.rankings if row[1] > 1000)
        assert matching == pytest.approx(1000 * Q1_SELECTIVITY, rel=0.5)

    def test_rankings_sorted_by_rank(self) -> None:
        """Sorted generation makes Q1's result a contiguous segment."""
        data = generate(rankings_rows=200, uservisits_rows=10)
        ranks = [row[1] for row in data.rankings]
        assert ranks == sorted(ranks)

    def test_q3_date_selectivity(self) -> None:
        data = generate(rankings_rows=10, uservisits_rows=1000)
        in_window = sum(
            1 for row in data.uservisits if row[3] < data.q3_date_threshold
        )
        assert in_window == pytest.approx(1000 * Q3_DATE_SELECTIVITY, rel=0.3)

    def test_visits_reference_existing_urls(self) -> None:
        data = generate(rankings_rows=100, uservisits_rows=100)
        urls = {row[0] for row in data.rankings}
        assert all(row[2] in urls for row in data.uservisits)

    def test_ip_prefix_is_prefix(self) -> None:
        data = generate(rankings_rows=10, uservisits_rows=50)
        for row in data.uservisits:
            assert row[0].startswith(row[1][:4])


class TestSyntheticGenerators:
    def test_kv_rows_cover_key_space(self) -> None:
        rows = kv_rows(100)
        assert sorted(row[0] for row in rows) == list(range(100))
        for row in rows:
            KV_SCHEMA.validate_row(row)

    def test_wide_rows_ordered_ids(self) -> None:
        rows = wide_rows(50)
        assert [row[0] for row in rows] == list(range(50))

    def test_shuffled_preserves_rows(self) -> None:
        rows = wide_rows(30)
        mixed = shuffled(rows)
        assert mixed != rows
        assert sorted(mixed) == sorted(rows)

    def test_cfpb_rows(self) -> None:
        rows = complaint_rows(200)
        assert len(rows) == 200
        for row in rows:
            CFPB_SCHEMA.validate_row(row)
        products = {row[1] for row in rows}
        assert len(products) >= 3  # skewed but not degenerate


class TestMixedWorkloads:
    def test_percentages_sum_to_100(self) -> None:
        for name, mix in WORKLOADS.items():
            assert sum(mix) == 100, name

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_runs_on_both_table(self, workload: str) -> None:
        db = ObliDB(cipher="null", seed=1)
        table = db.create_table(
            "t", KV_SCHEMA, 256, method=StorageMethod.BOTH, key_column="key"
        )
        for row in kv_rows(64):
            table.insert(row, fast=True)
        report = run_workload(table, workload, operations=12, key_space=64)
        assert report.operations == 12
        assert report.modeled_time_ms > 0
        assert report.ops_per_second > 0

    def test_unknown_workload_rejected(self) -> None:
        db = ObliDB(cipher="null", seed=1)
        table = db.create_table(
            "t", KV_SCHEMA, 64, method=StorageMethod.FLAT
        )
        with pytest.raises(Exception):
            run_workload(table, "L9", operations=1)

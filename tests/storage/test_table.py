"""Unit tests for Table (flat / indexed / both) and IndexedStorage."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave, StorageError
from repro.storage import IndexedStorage, Schema, StorageMethod, Table


def make_table(
    enclave: Enclave, schema: Schema, method: StorageMethod, capacity: int = 64
) -> Table:
    key = "key" if method is not StorageMethod.FLAT else None
    return Table(
        enclave,
        f"t_{method.value}",
        schema,
        capacity,
        method=method,
        key_column=key,
        rng=random.Random(4),
    )


class TestIndexedStorage:
    def test_point_and_range(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        storage = IndexedStorage(
            fast_enclave, kv_schema, "key", 128, rng=random.Random(1)
        )
        for key in range(50):
            storage.insert((key, f"v{key}"))
        assert storage.point_lookup(7) == [(7, "v7")]
        assert [r[0] for r in storage.range_lookup(10, 14)] == [10, 11, 12, 13, 14]

    def test_delete_all_duplicates(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        storage = IndexedStorage(
            fast_enclave, kv_schema, "key", 64, rng=random.Random(1)
        )
        for value in ("a", "b", "c"):
            storage.insert((5, value))
        assert storage.delete_all(5) == 3
        assert storage.point_lookup(5) == []

    def test_update_key(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        storage = IndexedStorage(
            fast_enclave, kv_schema, "key", 64, rng=random.Random(1)
        )
        storage.insert((3, "old"))
        assert storage.update_key(3, lambda row: (row[0], "new")) == 1
        assert storage.point_lookup(3) == [(3, "new")]
        assert storage.update_key(99, lambda row: row) == 0


class TestTableMethods:
    @pytest.mark.parametrize(
        "method", [StorageMethod.FLAT, StorageMethod.INDEXED, StorageMethod.BOTH]
    )
    def test_insert_and_read_everywhere(
        self, fast_enclave: Enclave, kv_schema: Schema, method: StorageMethod
    ) -> None:
        table = make_table(fast_enclave, kv_schema, method)
        for key in range(10):
            table.insert((key, f"v{key}"))
        assert table.used_rows == 10
        assert sorted(table.rows()) == [(k, f"v{k}") for k in range(10)]
        assert table.point_lookup(5) == [(5, "v5")]

    @pytest.mark.parametrize(
        "method", [StorageMethod.FLAT, StorageMethod.INDEXED, StorageMethod.BOTH]
    )
    def test_insert_many_everywhere(
        self, fast_enclave: Enclave, kv_schema: Schema, method: StorageMethod
    ) -> None:
        """Bulk insert keeps every representation consistent."""
        table = make_table(fast_enclave, kv_schema, method)
        table.insert_many([(key, f"v{key}") for key in range(10)])
        assert table.used_rows == 10
        assert sorted(table.rows()) == [(k, f"v{k}") for k in range(10)]
        assert table.point_lookup(7) == [(7, "v7")]

    def test_insert_many_batches_the_flat_pass(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        """The dual-copy maintenance pays ONE flat pass for k rows."""
        table = make_table(fast_enclave, kv_schema, StorageMethod.FLAT)
        capacity = table.capacity
        before = fast_enclave.cost.block_ios
        table.insert_many([(key, "x") for key in range(8)])
        assert fast_enclave.cost.block_ios - before == 2 * capacity
        fast_table = Table(
            fast_enclave, "t_fast_bulk", kv_schema, 64, method=StorageMethod.FLAT
        )
        before = fast_enclave.cost.block_ios
        fast_table.insert_many([(key, "x") for key in range(8)], fast=True)
        assert fast_enclave.cost.block_ios - before == 8  # one range write

    @pytest.mark.parametrize(
        "method", [StorageMethod.FLAT, StorageMethod.INDEXED, StorageMethod.BOTH]
    )
    def test_delete_key_everywhere(
        self, fast_enclave: Enclave, kv_schema: Schema, method: StorageMethod
    ) -> None:
        table = make_table(fast_enclave, kv_schema, method)
        for key in range(10):
            table.insert((key, "x"))
        assert table.delete_key(4) == 1
        assert table.point_lookup(4) == []
        assert table.used_rows == 9

    @pytest.mark.parametrize(
        "method", [StorageMethod.FLAT, StorageMethod.INDEXED, StorageMethod.BOTH]
    )
    def test_update_key_everywhere(
        self, fast_enclave: Enclave, kv_schema: Schema, method: StorageMethod
    ) -> None:
        table = make_table(fast_enclave, kv_schema, method)
        for key in range(6):
            table.insert((key, "old"))
        assert table.update_key(2, lambda row: (row[0], "new")) == 1
        assert table.point_lookup(2) == [(2, "new")]

    def test_both_representations_stay_consistent(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        table = make_table(fast_enclave, kv_schema, StorageMethod.BOTH)
        rng = random.Random(8)
        mirror: dict[int, str] = {}
        for step in range(60):
            key = rng.randrange(20)
            if key in mirror and rng.random() < 0.4:
                table.delete_key(key)
                del mirror[key]
            elif key not in mirror:
                table.insert((key, f"v{step}"))
                mirror[key] = f"v{step}"
        assert table.flat is not None and table.indexed is not None
        flat_rows = sorted(table.flat.rows())
        index_rows = sorted(table.indexed.rows())
        assert flat_rows == index_rows == sorted(mirror.items())

    def test_indexed_requires_key_column(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        with pytest.raises(StorageError):
            Table(
                fast_enclave, "bad", kv_schema, 16, method=StorageMethod.INDEXED
            )

    def test_require_accessors(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        flat_only = make_table(fast_enclave, kv_schema, StorageMethod.FLAT)
        with pytest.raises(StorageError):
            flat_only.require_index()
        index_only = make_table(fast_enclave, kv_schema, StorageMethod.INDEXED)
        with pytest.raises(StorageError):
            index_only.require_flat()

    def test_fast_insert_flag(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make_table(fast_enclave, kv_schema, StorageMethod.FLAT, capacity=32)
        before = fast_enclave.cost.block_ios
        table.insert((1, "a"), fast=True)
        assert fast_enclave.cost.block_ios - before == 1

"""Unit tests for schemas and the fixed-length row codec."""

from __future__ import annotations

import pytest

from repro.enclave import SchemaError
from repro.storage import (
    Column,
    ColumnType,
    Schema,
    float_column,
    int_column,
    str_column,
)


class TestColumn:
    def test_int_width(self) -> None:
        assert int_column("a").byte_width == 8

    def test_str_width(self) -> None:
        assert str_column("s", 20).byte_width == 20

    def test_str_requires_size(self) -> None:
        with pytest.raises(SchemaError):
            Column("s", ColumnType.STR)

    def test_int_rejects_size(self) -> None:
        with pytest.raises(SchemaError):
            Column("a", ColumnType.INT, 4)

    def test_empty_name_rejected(self) -> None:
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT)

    def test_int_validation(self) -> None:
        column = int_column("a")
        column.validate(42)
        with pytest.raises(SchemaError):
            column.validate("nope")
        with pytest.raises(SchemaError):
            column.validate(True)  # bools are not ints here

    def test_str_validation_length(self) -> None:
        column = str_column("s", 4)
        column.validate("abcd")
        with pytest.raises(SchemaError):
            column.validate("abcde")

    def test_str_validation_utf8_bytes(self) -> None:
        """Width is counted in encoded bytes, not characters."""
        column = str_column("s", 4)
        column.validate("hél")  # 4 UTF-8 bytes: fits exactly
        with pytest.raises(SchemaError):
            column.validate("héll")  # 5 UTF-8 bytes in 4 characters

    def test_float_validation(self) -> None:
        column = float_column("f")
        column.validate(1.5)
        column.validate(2)  # ints are acceptable floats
        with pytest.raises(SchemaError):
            column.validate("x")

    def test_int_codec_roundtrip(self) -> None:
        column = int_column("a")
        for value in (0, 1, -1, 2**62, -(2**62)):
            assert column.decode(column.encode(value)) == value

    def test_str_codec_roundtrip(self) -> None:
        column = str_column("s", 10)
        for value in ("", "a", "hello", "héllo"):
            assert column.decode(column.encode(value)) == value

    def test_float_codec_roundtrip(self) -> None:
        column = float_column("f")
        assert column.decode(column.encode(3.25)) == 3.25

    def test_int_sort_key_order_preserving(self) -> None:
        column = int_column("a")
        values = [-(2**40), -5, 0, 3, 2**40]
        keys = [column.sort_key(v) for v in values]
        assert keys == sorted(keys)

    def test_str_sort_key_order_preserving(self) -> None:
        column = str_column("s", 12)
        values = ["", "2018-01-01", "2018-09-01", "a", "ab"]
        keys = [column.sort_key(v) for v in values]
        assert keys == sorted(keys)

    def test_float_sort_key_rejected(self) -> None:
        with pytest.raises(SchemaError):
            float_column("f").sort_key(1.0)


class TestSchema:
    def test_row_size(self, kv_schema: Schema) -> None:
        assert kv_schema.row_size == 8 + 16

    def test_empty_schema_rejected(self) -> None:
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self) -> None:
        with pytest.raises(SchemaError):
            Schema([int_column("a"), int_column("a")])

    def test_column_lookup(self, kv_schema: Schema) -> None:
        assert kv_schema.column_index("value") == 1
        assert kv_schema.column("key").type is ColumnType.INT
        with pytest.raises(SchemaError):
            kv_schema.column_index("ghost")

    def test_row_roundtrip(self, kv_schema: Schema) -> None:
        row = (7, "hello")
        assert kv_schema.decode_row(kv_schema.encode_row(row)) == row

    def test_validate_row_length(self, kv_schema: Schema) -> None:
        with pytest.raises(SchemaError):
            kv_schema.validate_row((1,))
        with pytest.raises(SchemaError):
            kv_schema.validate_row((1, "x", 3))

    def test_validate_row_types(self, kv_schema: Schema) -> None:
        with pytest.raises(SchemaError):
            kv_schema.validate_row(("one", "x"))

    def test_decode_short_payload_rejected(self, kv_schema: Schema) -> None:
        with pytest.raises(SchemaError):
            kv_schema.decode_row(b"\x00" * 3)

    def test_project(self, wide_schema: Schema) -> None:
        projected = wide_schema.project(["measure", "id"])
        assert projected.column_names() == ["measure", "id"]
        assert projected.row_size == 16

    def test_equality_and_hash(self, kv_schema: Schema) -> None:
        clone = Schema([int_column("key"), str_column("value", 16)])
        assert kv_schema == clone
        assert hash(kv_schema) == hash(clone)

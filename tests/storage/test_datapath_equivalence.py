"""Trace-equivalence tests for the batched sealed-block data path.

The range/batch APIs (``read_range_framed``, ``write_range_framed``,
``exchange_framed``, ``exchange_pairs_framed`` and everything built on them:
scans, insert/update/delete passes, the bitonic sorters) exist purely to
amortize simulator overhead.  The obliviousness argument of the paper rests
on the *observable access sequence*, so batching must be invisible to the
adversary: same regions, same indices, same order, same read/write
interleaving as the per-block loops.

Every test here replays an operation once through the batched production
code and once through a hand-rolled per-block reference loop (using only the
single-block primitives ``read_framed``/``write_framed``/``read_row``/
``write_row``, each of which records exactly one trace event), then asserts
the two enclaves' traces are identical event for event.  These are the
regression guard for the paper's security property.

The ORAM sections extend the guard to the batched path pipeline: reference
Path/Ring ORAM subclasses re-implement the seed's per-bucket (per-slot)
loops — scalar reads/writes, scalar seal/open, the O(stash×levels) greedy
eviction rescan — and every access kind (real read, real write, dummy,
read-modify-write, scheduled eviction, early reshuffle) must emit an
adversary-visible sequence bit-identical to the batched gather/scatter
production code, while returning the same payloads and leaving the same
client state.
"""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.operators.sort import bitonic_sort, external_oblivious_sort
from repro.oram.path_oram import PathORAM, _pack_bucket, _unpack_bucket
from repro.oram.recursive import RecursivePathORAM
from repro.oram.ring_oram import _SLOT_HEADER, RingORAM, _BucketMeta
from repro.storage import FlatStorage, Schema
from repro.storage.rows import frame_row_validated, is_dummy, unframe_row
from repro.storage.schema import int_column, str_column


SCHEMA = Schema([int_column("k"), str_column("v", 8)])


def fresh_pair(capacity: int, rows: list[tuple]) -> tuple[FlatStorage, FlatStorage]:
    """Two identically-populated tables in two fresh enclaves.

    Fresh enclaves share region-name counters (both tables are ``flat#1``),
    so identical operations must yield byte-identical traces.
    """
    tables = []
    for _ in range(2):
        enclave = Enclave(cipher="authenticated", keep_trace_events=True)
        table = FlatStorage(enclave, SCHEMA, capacity)
        for row in rows:
            table.fast_insert(row)
        tables.append(table)
    return tables[0], tables[1]


def assert_traces_match(a: FlatStorage, b: FlatStorage) -> None:
    trace_a, trace_b = a.enclave.trace, b.enclave.trace
    assert len(trace_a) == len(trace_b)
    assert [(e.op, e.region, e.index) for e in trace_a.events] == [
        (e.op, e.region, e.index) for e in trace_b.events
    ]
    assert trace_a.matches(trace_b)


ROWS = [(i * 13 % 7, f"r{i}") for i in range(5)]


class TestScanEquivalence:
    def test_batched_scan_matches_per_block_reads(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        got = [unframe_row(SCHEMA, framed) for _, framed in batched.scan_framed()]
        want = [reference.read_row(i) for i in range(reference.capacity)]
        assert got == want
        assert_traces_match(batched, reference)

    def test_rows_matches_per_block_scan(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        assert batched.rows() == [
            row for _, row in reference.scan() if row is not None
        ]
        assert_traces_match(batched, reference)

    def test_range_read_is_n_single_reads(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        frames = batched.read_range_framed(2, 4)
        want = [reference.read_framed(i) for i in range(2, 6)]
        assert [is_dummy(f) for f in frames] == [is_dummy(f) for f in want]
        assert_traces_match(batched, reference)

    def test_range_write_is_n_single_writes(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        frames = [frame_row_validated(SCHEMA, (9, "x"))] * 3
        batched.write_range_framed(1, frames)
        for i, framed in enumerate(frames, 1):
            reference.write_framed(i, framed)
        assert_traces_match(batched, reference)


class TestPassEquivalence:
    def test_insert_pass(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        batched.insert((42, "new"))
        # Reference: the seed's per-block read/write pass.
        framed_new = frame_row_validated(SCHEMA, (42, "new"))
        inserted = False
        for index in range(reference.capacity):
            framed = reference.read_framed(index)
            if not inserted and is_dummy(framed):
                reference.write_framed(index, framed_new)
                inserted = True
            else:
                reference.write_framed(index, framed)
        assert inserted
        assert_traces_match(batched, reference)
        assert sorted(batched.rows()) == sorted(reference.rows())

    def test_update_pass(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        predicate = lambda row: row[0] % 2 == 0  # noqa: E731
        assign = lambda row: (row[0], "upd")  # noqa: E731
        batched.update(predicate, assign)
        for index in range(reference.capacity):
            framed = reference.read_framed(index)
            row = unframe_row(SCHEMA, framed)
            if row is not None and predicate(row):
                reference.write_framed(index, frame_row_validated(SCHEMA, assign(row)))
            else:
                reference.write_framed(index, framed)
        assert_traces_match(batched, reference)
        assert sorted(batched.rows()) == sorted(reference.rows())

    def test_update_trace_is_data_independent(self) -> None:
        """Zero matches and all matches must leave identical traces."""
        none_match, all_match = fresh_pair(8, ROWS)
        none_match.update(lambda row: False, lambda row: row)
        all_match.update(lambda row: True, lambda row: (row[0], "y"))
        assert_traces_match(none_match, all_match)

    def test_delete_pass(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        predicate = lambda row: row[0] < 3  # noqa: E731
        batched.delete(predicate)
        for index in range(reference.capacity):
            framed = reference.read_framed(index)
            row = unframe_row(SCHEMA, framed)
            if row is not None and predicate(row):
                reference.write_row(index, None)
            else:
                reference.write_framed(index, framed)
        assert_traces_match(batched, reference)
        assert sorted(batched.rows()) == sorted(reference.rows())

    def test_copy_to_keeps_interleaved_pattern(self) -> None:
        batched, reference = fresh_pair(4, ROWS[:3])
        batched.copy_to(capacity=8)
        # Reference: allocate the target (its init writes one dummy pass),
        # then the per-block interleaved read-source/write-target loop.
        target = FlatStorage(
            reference.enclave, SCHEMA, 8, ledger=reference._ledger
        )
        for index in range(reference.capacity):
            target.write_framed(index, reference.read_framed(index))
        assert_traces_match(batched, reference)


def reference_bitonic_sort(table: FlatStorage, key, enclave_rows: int = 1) -> None:
    """The seed's per-block bitonic sort: one trace event per access."""

    def lifted(row):
        return (1,) if row is None else (0,) + key(row)

    n = table.capacity
    enclave = table.enclave

    def load_sort_store(lo: int, length: int, ascending: bool) -> None:
        rows = [table.read_row(lo + i) for i in range(length)]
        rows.sort(key=lifted, reverse=not ascending)
        enclave.cost.record_comparisons(length * max(1, length.bit_length()))
        for i, row in enumerate(rows):
            table.write_row(lo + i, row)

    def compare_exchange(i: int, j: int, ascending: bool) -> None:
        a = table.read_row(i)
        b = table.read_row(j)
        enclave.cost.record_comparisons(1)
        if (lifted(a) > lifted(b)) == ascending:
            a, b = b, a
        table.write_row(i, a)
        table.write_row(j, b)

    def merge(lo: int, length: int, ascending: bool) -> None:
        if length <= 1:
            return
        if length <= enclave_rows:
            load_sort_store(lo, length, ascending)
            return
        half = length // 2
        for i in range(lo, lo + half):
            compare_exchange(i, i + half, ascending)
        merge(lo, half, ascending)
        merge(lo + half, half, ascending)

    def sort(lo: int, length: int, ascending: bool) -> None:
        if length <= 1:
            return
        if length <= enclave_rows:
            load_sort_store(lo, length, ascending)
            return
        half = length // 2
        sort(lo, half, True)
        sort(lo + half, half, False)
        merge(lo, length, ascending)

    sort(0, n, True)


class TestSortEquivalence:
    KEY = staticmethod(lambda row: (row[0], row[1]))

    def test_bitonic_network_trace_and_result(self) -> None:
        rows = [(i * 7 % 11, f"r{i}") for i in range(11)]
        batched, reference = fresh_pair(16, rows)
        bitonic_sort(batched, self.KEY)
        reference_bitonic_sort(reference, self.KEY)
        assert_traces_match(batched, reference)
        # Cost model must agree too (comparisons, block transfers).
        assert batched.enclave.cost.snapshot() == reference.enclave.cost.snapshot()
        got = batched.rows()
        assert got == reference.rows()
        assert [row[0] for row in got] == sorted(row[0] for row in got)

    def test_bitonic_cutover_trace_and_result(self) -> None:
        rows = [(i * 5 % 9, f"r{i}") for i in range(9)]
        batched, reference = fresh_pair(16, rows)
        bitonic_sort(batched, self.KEY, enclave_rows=4)
        reference_bitonic_sort(reference, self.KEY, enclave_rows=4)
        assert_traces_match(batched, reference)
        assert batched.enclave.cost.snapshot() == reference.enclave.cost.snapshot()
        assert batched.rows() == reference.rows()

    def test_bitonic_trace_is_data_independent(self) -> None:
        """Two different datasets of equal size: identical sort traces."""
        a, _ = fresh_pair(16, [(i, "a") for i in range(12)])
        b, _ = fresh_pair(16, [(100 - i, "b") for i in range(12)])
        bitonic_sort(a, self.KEY)
        bitonic_sort(b, self.KEY)
        assert a.enclave.trace.matches(b.enclave.trace)

    def test_external_sort_merge_split_trace(self) -> None:
        """Merge-split runs read run/read run/write run/write run, exactly
        as the per-block loops did; result stays sorted."""
        rows = [(i * 3 % 13, f"r{i}") for i in range(13)]
        batched, reference = fresh_pair(16, rows)
        external_oblivious_sort(batched, self.KEY, chunk_rows=4)

        # Reference: per-block implementation of the same chunked algorithm.
        def lifted(row):
            return (1,) if row is None else (0,) + self.KEY(row)

        chunk_rows = 4
        n = reference.capacity
        num_chunks = n // chunk_rows
        with reference.enclave.oblivious_buffer(
            2 * chunk_rows * (reference.schema.row_size + 1)
        ):
            for chunk in range(num_chunks):
                lo = chunk * chunk_rows
                rows_ = [reference.read_row(lo + i) for i in range(chunk_rows)]
                rows_.sort(key=lifted)
                reference.enclave.cost.record_comparisons(
                    chunk_rows * max(1, chunk_rows.bit_length())
                )
                for i, row in enumerate(rows_):
                    reference.write_row(lo + i, row)

            def merge_split(left: int, right: int, ascending: bool) -> None:
                lo_left = left * chunk_rows
                lo_right = right * chunk_rows
                rows_ = [reference.read_row(lo_left + i) for i in range(chunk_rows)]
                rows_ += [reference.read_row(lo_right + i) for i in range(chunk_rows)]
                rows_.sort(key=lifted, reverse=not ascending)
                reference.enclave.cost.record_comparisons(
                    2 * chunk_rows * max(1, (2 * chunk_rows).bit_length())
                )
                for i in range(chunk_rows):
                    reference.write_row(lo_left + i, rows_[i])
                for i in range(chunk_rows):
                    reference.write_row(lo_right + i, rows_[chunk_rows + i])

            k = 2
            while k <= num_chunks:
                j = k // 2
                while j >= 1:
                    for i in range(num_chunks):
                        partner = i ^ j
                        if partner > i:
                            merge_split(i, partner, (i & k) == 0)
                    j //= 2
                k *= 2

        assert_traces_match(batched, reference)
        assert batched.rows() == reference.rows()


class TestChunkedPassEquivalence:
    """Full-table passes split into bounded chunks must stay trace-identical.

    ``_CHUNK_BLOCKS`` is shrunk below the table size so every pass crosses
    chunk boundaries (production value is 1024, far above these tables).
    """

    @pytest.fixture(autouse=True)
    def small_chunks(self, monkeypatch: pytest.MonkeyPatch) -> None:
        import repro.storage.flat as flat

        monkeypatch.setattr(flat, "_CHUNK_BLOCKS", 3)

    def test_chunked_scan_matches_per_block_reads(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        got = [unframe_row(SCHEMA, framed) for _, framed in batched.scan_framed()]
        want = [reference.read_row(i) for i in range(reference.capacity)]
        assert got == want
        assert_traces_match(batched, reference)

    def test_chunked_update_pass(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        predicate = lambda row: row[0] % 2 == 0  # noqa: E731
        assign = lambda row: (row[0], "upd")  # noqa: E731
        batched.update(predicate, assign)
        for index in range(reference.capacity):
            framed = reference.read_framed(index)
            row = unframe_row(SCHEMA, framed)
            if row is not None and predicate(row):
                reference.write_framed(index, frame_row_validated(SCHEMA, assign(row)))
            else:
                reference.write_framed(index, framed)
        assert_traces_match(batched, reference)
        assert sorted(batched.rows()) == sorted(reference.rows())

    def test_chunked_range_write(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        frames = [frame_row_validated(SCHEMA, (i, "x")) for i in range(7)]
        batched.write_range_framed(0, frames)
        for i, framed in enumerate(frames):
            reference.write_framed(i, framed)
        assert_traces_match(batched, reference)
        assert batched.rows() == reference.rows()


class TestBatchSemantics:
    def test_exchange_pass_rejects_wrong_block_count(self) -> None:
        from repro.enclave.errors import StorageError

        table, _ = fresh_pair(4, ROWS[:2])
        with pytest.raises(StorageError):
            table.enclave.untrusted.exchange_range(
                table.region_name, 0, 4, lambda blocks: blocks[:-1]
            )

    def test_range_read_out_of_bounds(self) -> None:
        from repro.enclave.errors import StorageError

        table, _ = fresh_pair(4, ROWS[:2])
        with pytest.raises(StorageError):
            table.read_range_framed(2, 4)

    def test_batched_ciphertexts_are_fresh(self) -> None:
        """A batched dummy pass must re-randomise every ciphertext."""
        table, _ = fresh_pair(4, ROWS[:2])
        before = [table.enclave.untrusted.peek(table.region_name, i) for i in range(4)]
        table.exchange_framed(0, 4, lambda index, framed: framed)
        after = [table.enclave.untrusted.peek(table.region_name, i) for i in range(4)]
        for old, new in zip(before, after):
            assert old.nonce != new.nonce or old.ciphertext != new.ciphertext


# ---------------------------------------------------------------------------
# Gather/scatter primitives
# ---------------------------------------------------------------------------


class TestGatherScatterEquivalence:
    """``read_at``/``write_at`` must record the per-slot loop's exact trace."""

    INDICES = [0, 2, 5, 12, 3, 3]  # non-contiguous, unordered, repeated

    def _pair(self) -> tuple[Enclave, Enclave]:
        enclaves = []
        for _ in range(2):
            enclave = Enclave(cipher="authenticated", keep_trace_events=True)
            enclave.untrusted.allocate_region("r", 16)
            for i in range(16):
                enclave.untrusted.write("r", i, enclave.seal(bytes([i])))
            enclaves.append(enclave)
        return enclaves[0], enclaves[1]

    def test_read_at_is_n_single_reads(self) -> None:
        batched, reference = self._pair()
        got = batched.untrusted.read_at("r", self.INDICES)
        want = [reference.untrusted.read("r", i) for i in self.INDICES]
        assert [b.ciphertext for b in got] == [
            batched.untrusted.peek("r", i).ciphertext for i in self.INDICES
        ]
        assert len(got) == len(want)
        assert batched.trace.matches(reference.trace)
        assert [(e.op, e.region, e.index) for e in batched.trace.events] == [
            (e.op, e.region, e.index) for e in reference.trace.events
        ]

    def test_write_at_is_n_single_writes(self) -> None:
        batched, reference = self._pair()
        blocks = [batched.seal(bytes([i])) for i in range(len(self.INDICES))]
        batched.untrusted.write_at("r", self.INDICES, blocks)
        for i, block in zip(self.INDICES, blocks):
            reference.untrusted.write("r", i, block)
        assert batched.trace.matches(reference.trace)
        # Repeated index: last write wins, like the loop.
        assert batched.untrusted.peek("r", 3) is blocks[-1]

    def test_out_of_bounds_and_length_mismatch(self) -> None:
        from repro.enclave.errors import StorageError

        enclave, _ = self._pair()
        with pytest.raises(StorageError):
            enclave.untrusted.read_at("r", [0, 16])
        with pytest.raises(StorageError):
            enclave.untrusted.write_at("r", [0, 1], [None])

    def test_cost_model_counts_per_slot(self) -> None:
        batched, reference = self._pair()
        batched.untrusted.read_at("r", self.INDICES)
        batched.untrusted.write_at(
            "r", self.INDICES, [None] * len(self.INDICES)
        )
        for i in self.INDICES:
            reference.untrusted.read("r", i)
        for i in self.INDICES:
            reference.untrusted.write("r", i, None)
        assert batched.cost.snapshot() == reference.cost.snapshot()


# ---------------------------------------------------------------------------
# ORAM path pipelines
# ---------------------------------------------------------------------------


class ReferencePathORAM(PathORAM):
    """The seed's per-bucket Path ORAM: one scalar read/open/seal/write per
    bucket and the O(stash×levels) greedy-eviction rescan.  Constructed with
    the same rng seed as the batched production class, it must stay in
    lockstep: identical traces, payloads, positions, and stash."""

    def _initialise_buckets(self, empty: bytes) -> None:
        enclave, ledger, region = self._enclave, self._ledger, self._region
        for index in range(self._num_buckets):
            revision = ledger.next_revision(region, index)
            aad = ledger.associated_data(region, index, revision)
            enclave.untrusted.write(region, index, enclave.seal(empty, aad))
            ledger.commit(region, index, revision)

    def _access(self, block_id, new_data, mutate=None):
        from repro.enclave.errors import ORAMError

        if self._freed:
            raise ORAMError("ORAM has been freed")
        self._enclave.cost.record_oram_access()
        if block_id is not None:
            self.check_block_id(block_id)
            leaf = self._position[block_id]
        else:
            leaf = self._rng.randrange(self._leaves)
        path = self._path_indices(leaf)
        enclave, ledger, region = self._enclave, self._ledger, self._region

        # Read the whole path into the stash, one bucket at a time.
        for index in path:
            sealed = enclave.untrusted.read(region, index)
            aad = ledger.associated_data(region, index, ledger.current(region, index))
            plaintext = enclave.open(sealed, aad)
            for bid, bleaf, payload in _unpack_bucket(
                plaintext, self._bucket_size, self._block_size
            ):
                self._stash[bid] = (bleaf, payload)

        result = None
        if block_id is not None:
            new_leaf = self._rng.randrange(self._leaves)
            if block_id in self._stash:
                _, payload = self._stash[block_id]
                result = payload
                self._stash[block_id] = (new_leaf, payload)
            if mutate is not None:
                new_data = mutate(result)
            if new_data is not None:
                self._stash[block_id] = (new_leaf, new_data)
            self._position[block_id] = new_leaf
        else:
            self._rng.randrange(self._leaves)

        # Write back leaf→root with the per-level stash rescan.
        for depth in range(len(path) - 1, -1, -1):
            index = path[depth]
            placed = []
            for bid in list(self._stash):
                if len(placed) >= self._bucket_size:
                    break
                bleaf, payload = self._stash[bid]
                if self._ancestor_at_depth(bleaf, depth) == index:
                    placed.append((bid, bleaf, payload))
                    del self._stash[bid]
            plaintext = _pack_bucket(placed, self._bucket_size, self._block_size)
            revision = ledger.next_revision(region, index)
            aad = ledger.associated_data(region, index, revision)
            enclave.untrusted.write(region, index, enclave.seal(plaintext, aad))
            ledger.commit(region, index, revision)
        return result


class ReferenceRingORAM(RingORAM):
    """The seed's per-slot Ring ORAM: scalar slot IO everywhere, per-level
    stash rescans in the eviction, per-slot init and reshuffle rewrites."""

    def _initialise_slots(self) -> None:
        for index in range(self._num_buckets * self._slots_per_bucket):
            self._write_slot_scalar(index, self._dummy_plaintext)

    def _write_slot_scalar(self, slot_index: int, plaintext: bytes) -> None:
        enclave, ledger, region = self._enclave, self._ledger, self._region
        revision = ledger.next_revision(region, slot_index)
        aad = ledger.associated_data(region, slot_index, revision)
        enclave.untrusted.write(region, slot_index, enclave.seal(plaintext, aad))
        ledger.commit(region, slot_index, revision)

    def _read_slot_scalar(self, slot_index: int):
        enclave, ledger, region = self._enclave, self._ledger, self._region
        sealed = enclave.untrusted.read(region, slot_index)
        aad = ledger.associated_data(region, slot_index, ledger.current(region, slot_index))
        plaintext = enclave.open(sealed, aad)
        block_id, leaf, length = _SLOT_HEADER.unpack_from(plaintext, 0)
        return block_id, leaf, plaintext[_SLOT_HEADER.size : _SLOT_HEADER.size + length]

    # Route the batched helpers through the scalar loop: the production
    # planning logic (slot choice, restock plans) is shared, but every
    # observable access and every seal/open happens one slot at a time.
    def _read_slots(self, slot_indices):
        return [self._read_slot_scalar(index) for index in slot_indices]

    def _write_slots(self, slot_indices, plaintexts) -> None:
        for index, plaintext in zip(slot_indices, plaintexts):
            self._write_slot_scalar(index, plaintext)

    def _reshuffle_bucket(self, bucket_index: int) -> None:
        # Shared planning (same rng draws, same permutation as production),
        # scalar observable I/O: one read per restock slot, one write per
        # bucket slot in ascending order.
        to_read, real_slots = self._restock_plan(bucket_index)
        entries = [
            self._read_slot_scalar(self._slot_index(bucket_index, slot))
            for slot in to_read
        ]
        fresh, plaintexts = self._plan_reshuffle(to_read, real_slots, entries)
        self._meta[bucket_index] = fresh
        for slot, plaintext in enumerate(plaintexts):
            self._write_slot_scalar(
                self._slot_index(bucket_index, slot), plaintext
            )

    def _evict_path(self, leaf: int) -> None:
        path = self._path_buckets(leaf)
        for bucket_index in path:
            to_read, real_slots = self._restock_plan(bucket_index)
            self._restock_merge(
                to_read,
                real_slots,
                [
                    self._read_slot_scalar(self._slot_index(bucket_index, slot))
                    for slot in to_read
                ],
            )
        for depth in range(len(path) - 1, -1, -1):
            bucket_index = path[depth]
            fresh = _BucketMeta(self._z, self._s)
            placed = 0
            slot_order = list(range(self._slots_per_bucket))
            self._rng.shuffle(slot_order)
            for block_id in list(self._stash):
                if placed >= self._z:
                    break
                bleaf, payload = self._stash[block_id]
                if self._ancestor_at_depth(bleaf, depth) == bucket_index:
                    slot = slot_order[placed]
                    fresh.slots[slot] = block_id
                    self._write_slot_scalar(
                        self._slot_index(bucket_index, slot),
                        self._slot_plaintext(block_id, bleaf, payload),
                    )
                    placed += 1
                    del self._stash[block_id]
            for slot in slot_order[placed:]:
                self._write_slot_scalar(
                    self._slot_index(bucket_index, slot), self._dummy_plaintext
                )
            self._meta[bucket_index] = fresh


def assert_enclaves_match(a: Enclave, b: Enclave) -> None:
    assert len(a.trace) == len(b.trace)
    assert [(e.op, e.region, e.index) for e in a.trace.events] == [
        (e.op, e.region, e.index) for e in b.trace.events
    ]
    assert a.trace.matches(b.trace)
    assert a.cost.snapshot() == b.cost.snapshot()


class TestPathORAMEquivalence:
    """Batched path pipeline vs. the seed's per-bucket loop."""

    CAPACITY = 24

    def _pair(self, seed: int = 7) -> tuple[PathORAM, PathORAM, Enclave, Enclave]:
        enclave_a = Enclave(cipher="authenticated", keep_trace_events=True)
        enclave_b = Enclave(cipher="authenticated", keep_trace_events=True)
        batched = PathORAM(
            enclave_a, self.CAPACITY, block_size=16, rng=random.Random(seed)
        )
        reference = ReferencePathORAM(
            enclave_b, self.CAPACITY, block_size=16, rng=random.Random(seed)
        )
        return batched, reference, enclave_a, enclave_b

    def test_init_trace_matches_per_bucket_loop(self) -> None:
        _, _, enclave_a, enclave_b = self._pair()
        assert_enclaves_match(enclave_a, enclave_b)

    def test_real_dummy_and_rmw_accesses(self) -> None:
        batched, reference, enclave_a, enclave_b = self._pair()
        rng = random.Random(99)
        mutate = lambda payload: (payload or b"") + b"+"  # noqa: E731
        for step in range(400):
            block = rng.randrange(self.CAPACITY)
            kind = step % 4
            if kind == 0:
                payload = bytes([rng.randrange(256) for _ in range(8)])
                batched.write(block, payload)
                reference.write(block, payload)
            elif kind == 1:
                assert batched.read(block) == reference.read(block)
            elif kind == 2:
                batched.dummy_access()
                reference.dummy_access()
            else:
                batched.update(block, mutate)
                reference.update(block, mutate)
        assert_enclaves_match(enclave_a, enclave_b)
        # Client state must stay in lockstep too: the vectorized eviction
        # makes exactly the per-level rescan's placements.
        assert batched._position == reference._position
        assert batched._stash == reference._stash
        for index in range(batched.num_buckets):
            got = enclave_a.open(
                enclave_a.untrusted.peek(batched.region_name, index),
                batched._ledger.open_at(batched.region_name, [index])[0],
            )
            want = enclave_b.open(
                enclave_b.untrusted.peek(reference.region_name, index),
                reference._ledger.open_at(reference.region_name, [index])[0],
            )
            assert got == want

    def test_padding_burst_matches_loop(self) -> None:
        batched, reference, enclave_a, enclave_b = self._pair(seed=3)
        batched.dummy_accesses(7)
        for _ in range(7):
            reference.dummy_access()
        assert_enclaves_match(enclave_a, enclave_b)

    def test_recursive_map_rides_batched_access(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        """The recursive position map is routed through the same batched
        access: production vs. per-bucket references for both levels."""
        import repro.oram.recursive as recursive

        enclave_a = Enclave(cipher="authenticated", keep_trace_events=True)
        batched = RecursivePathORAM(
            enclave_a, 16, block_size=12, rng=random.Random(5)
        )
        enclave_b = Enclave(cipher="authenticated", keep_trace_events=True)
        monkeypatch.setattr(recursive, "PathORAM", ReferencePathORAM)
        reference = RecursivePathORAM(
            enclave_b, 16, block_size=12, rng=random.Random(5)
        )
        rng = random.Random(11)
        for step in range(60):
            block = rng.randrange(16)
            if step % 3 == 0:
                payload = bytes([rng.randrange(256) for _ in range(6)])
                batched.write(block, payload)
                reference.write(block, payload)
            elif step % 3 == 1:
                assert batched.read(block) == reference.read(block)
            else:
                batched.dummy_access()
                reference.dummy_access()
        assert_enclaves_match(enclave_a, enclave_b)


# ---------------------------------------------------------------------------
# Cross-region interleaved exchange
# ---------------------------------------------------------------------------


class TestInterleavedExchangeEquivalence:
    """``exchange_interleaved`` must record the per-step loop's exact trace."""

    def _pair(self) -> tuple[Enclave, Enclave]:
        enclaves = []
        for _ in range(2):
            enclave = Enclave(cipher="authenticated", keep_trace_events=True)
            for name, capacity in (("a", 8), ("b", 8)):
                enclave.untrusted.allocate_region(name, capacity)
                for i in range(capacity):
                    enclave.untrusted.write(name, i, enclave.seal(bytes([i])))
            enclaves.append(enclave)
        return enclaves[0], enclaves[1]

    SCHEDULE = [
        ("R", "a", 0),
        ("W", "b", 3),
        ("R", "a", 5),
        ("R", "b", 1),
        ("W", "a", 2),
        ("W", "b", 0),
    ]

    def test_mixed_schedule_matches_per_step_loop(self) -> None:
        batched, reference = self._pair()
        replacements = [batched.seal(bytes([100 + i])) for i in range(3)]
        batched.untrusted.exchange_interleaved(
            self.SCHEDULE, lambda blocks: list(replacements)
        )
        # Reference: the per-step loop over scalar read/write.
        ref_blocks = [reference.seal(bytes([100 + i])) for i in range(3)]
        writes = iter(ref_blocks)
        for op, region, index in self.SCHEDULE:
            if op == "R":
                reference.untrusted.read(region, index)
            else:
                reference.untrusted.write(region, index, next(writes))
        assert_enclaves_match(batched, reference)
        # Scatter landed in schedule order across both regions.
        assert batched.untrusted.peek("b", 3) is replacements[0]
        assert batched.untrusted.peek("a", 2) is replacements[1]
        assert batched.untrusted.peek("b", 0) is replacements[2]

    def test_failed_compute_records_nothing(self) -> None:
        enclave, _ = self._pair()
        before_len = len(enclave.trace)
        before = [enclave.untrusted.peek("b", i) for i in range(8)]
        with pytest.raises(RuntimeError):
            enclave.untrusted.exchange_interleaved(
                self.SCHEDULE, lambda blocks: (_ for _ in ()).throw(RuntimeError())
            )
        assert len(enclave.trace) == before_len
        assert [enclave.untrusted.peek("b", i) for i in range(8)] == before

    def test_schedule_validation(self) -> None:
        from repro.enclave.errors import StorageError

        enclave, _ = self._pair()
        # Wrong replacement count.
        with pytest.raises(StorageError):
            enclave.untrusted.exchange_interleaved(
                self.SCHEDULE, lambda blocks: []
            )
        # Read of a slot the schedule already wrote: the gathered block
        # would be stale, so the primitive must refuse.
        with pytest.raises(StorageError):
            enclave.untrusted.exchange_interleaved(
                [("W", "a", 1), ("R", "a", 1)], lambda blocks: [None]
            )
        # Out of bounds and unknown op.
        with pytest.raises(StorageError):
            enclave.untrusted.exchange_interleaved(
                [("R", "a", 8)], lambda blocks: []
            )
        with pytest.raises(StorageError):
            enclave.untrusted.exchange_interleaved(
                [("X", "a", 0)], lambda blocks: []
            )

    def test_interleave_to_requires_shared_enclave(self) -> None:
        from repro.enclave.errors import StorageError

        table_a, _ = fresh_pair(4, ROWS[:2])
        table_b, _ = fresh_pair(4, ROWS[:2])
        with pytest.raises(StorageError):
            table_a.interleave_to(table_b, [(0, 0)], lambda offset, frames: frames)


# ---------------------------------------------------------------------------
# Operator paths riding the interleaved exchange
# ---------------------------------------------------------------------------

from repro.operators.aggregate import (  # noqa: E402
    AggregateFunction,
    AggregateSpec,
    _Accumulator,
    _group_output_schema,
    _sorted_group_aggregate,
)
from repro.operators.join import (  # noqa: E402
    _largest_dividing_chunk,
    _neutral_value,
    hash_join,
    joined_schema,
    opaque_join,
    zero_om_join,
)
from repro.operators.predicate import Comparison, TruePredicate  # noqa: E402
from repro.operators.sort import padded_scratch  # noqa: E402
from repro.storage.rows import frame_dummy, framed_size  # noqa: E402
from repro.storage.schema import Row, int_column as _int  # noqa: E402


T2_SCHEMA = Schema([int_column("fk"), str_column("w", 8)])
T1_ROWS = [(i, f"p{i}") for i in range(5)]  # primary side: unique keys
T2_ROWS = [(i % 4, f"f{i}") for i in range(7)]  # foreign side: repeats + misses


def fresh_join_tables(enclave: Enclave) -> tuple[FlatStorage, FlatStorage]:
    table1 = FlatStorage(enclave, SCHEMA, 8)
    for row in T1_ROWS:
        table1.fast_insert(row)
    table2 = FlatStorage(enclave, T2_SCHEMA, 8)
    for row in T2_ROWS:
        table2.fast_insert(row)
    return table1, table2


def reference_hash_join(
    table1: FlatStorage,
    table2: FlatStorage,
    column1: str,
    column2: str,
    oblivious_memory_bytes: int,
) -> FlatStorage:
    """The seed's hash join: per-row build reads, per-row probe R/W loop."""
    enclave = table1.enclave
    key1 = table1.schema.column_index(column1)
    key2 = table2.schema.column_index(column2)
    out_schema = joined_schema(table1.schema, table2.schema)
    row_bytes = framed_size(table1.schema) + 16
    chunk_rows = max(1, oblivious_memory_bytes // row_bytes)
    num_chunks = (table1.capacity + chunk_rows - 1) // chunk_rows
    output = FlatStorage(enclave, out_schema, num_chunks * table2.capacity)
    out_position = 0
    matched = 0
    with enclave.oblivious_buffer(min(chunk_rows, table1.capacity) * row_bytes):
        for chunk in range(num_chunks):
            start = chunk * chunk_rows
            stop = min(start + chunk_rows, table1.capacity)
            hash_table: dict = {}
            for index in range(start, stop):
                row = table1.read_row(index)
                if row is not None:
                    hash_table[row[key1]] = row
            for index in range(table2.capacity):
                row2 = table2.read_row(index)
                row1 = hash_table.get(row2[key2]) if row2 is not None else None
                if row1 is not None:
                    output.write_row(out_position, row1 + row2)
                    matched += 1
                else:
                    output.write_row(out_position, None)
                out_position += 1
    output._used = matched
    return output


def reference_union_scratch(
    table1: FlatStorage, table2: FlatStorage, column1: str, column2: str
) -> tuple[FlatStorage, Schema, int, int]:
    """The seed's per-row copy of both tables into the tagged scratch."""
    out_schema = joined_schema(table1.schema, table2.schema)
    scratch_schema = Schema([_int("_tag")] + list(out_schema.columns))
    capacity = padded_scratch(table1.capacity + table2.capacity)
    scratch = FlatStorage(table1.enclave, scratch_schema, capacity)
    left_width = len(table1.schema)
    right_neutral = tuple(_neutral_value(c) for c in out_schema.columns[left_width:])
    left_neutral = tuple(_neutral_value(c) for c in out_schema.columns[:left_width])
    position = 0
    for index in range(table1.capacity):
        row = table1.read_row(index)
        scratch.write_row(
            position, (0,) + row + right_neutral if row is not None else None
        )
        position += 1
    for index in range(table2.capacity):
        row = table2.read_row(index)
        scratch.write_row(
            position, (1,) + left_neutral + row if row is not None else None
        )
        position += 1
    key1_index = 1 + table1.schema.column_index(column1)
    key2_index = 1 + left_width + table2.schema.column_index(column2)
    return scratch, out_schema, key1_index, key2_index


def reference_merge_scan(
    scratch: FlatStorage,
    out_schema: Schema,
    key1_index: int,
    key2_index: int,
    left_width: int,
) -> FlatStorage:
    """The seed's per-row merge: R scratch[i], W output[i] per row."""
    output = FlatStorage(scratch.enclave, out_schema, scratch.capacity)
    current_primary: Row | None = None
    matched = 0
    for index in range(scratch.capacity):
        row = scratch.read_row(index)
        emit: Row | None = None
        if row is not None:
            if row[0] == 0:
                current_primary = row[1 : 1 + left_width]
            elif (
                current_primary is not None
                and row[key2_index] == current_primary[key1_index - 1]
            ):
                emit = current_primary + row[1 + left_width :]
                matched += 1
        output.write_row(index, emit)
    output._used = matched
    return output


def reference_sort_merge_join(
    table1: FlatStorage,
    table2: FlatStorage,
    column1: str,
    column2: str,
    oblivious_memory_bytes: int | None,
    enclave_rows: int = 1,
) -> FlatStorage:
    """Per-row union + per-row merge around the production (already
    trace-equivalence-tested) sorters: Opaque style when
    ``oblivious_memory_bytes`` is given, 0-OM bitonic otherwise."""
    scratch, out_schema, key1_index, key2_index = reference_union_scratch(
        table1, table2, column1, column2
    )
    left_width = len(table1.schema)
    key_column1 = scratch.schema.columns[key1_index]

    def sort_key(row: Row) -> tuple:
        key = row[key1_index] if row[0] == 0 else row[key2_index]
        return (key_column1.sort_key(key), row[0])

    if oblivious_memory_bytes is not None:
        row_bytes = framed_size(scratch.schema)
        chunk_rows = max(1, oblivious_memory_bytes // (2 * row_bytes))
        chunk_rows = _largest_dividing_chunk(scratch.capacity, chunk_rows)
        external_oblivious_sort(scratch, sort_key, chunk_rows)
    else:
        bitonic_sort(scratch, sort_key, enclave_rows=enclave_rows)
    output = reference_merge_scan(
        scratch, out_schema, key1_index, key2_index, left_width
    )
    scratch.free()
    return output


class TestJoinPathEquivalence:
    """Batched probe/union/merge vs the seed's per-row two-region loops."""

    OM_SINGLE = 1 << 20  # build side fits: one chunk, one probe pass
    OM_MULTI = 80  # ~2 rows per chunk: multi-pass probe

    def _enclaves(self) -> tuple[Enclave, Enclave]:
        return (
            Enclave(cipher="authenticated", keep_trace_events=True),
            Enclave(cipher="authenticated", keep_trace_events=True),
        )

    @pytest.mark.parametrize("om_bytes", [OM_SINGLE, OM_MULTI])
    def test_hash_join_probe(self, om_bytes: int) -> None:
        enclave_a, enclave_b = self._enclaves()
        t1a, t2a = fresh_join_tables(enclave_a)
        t1b, t2b = fresh_join_tables(enclave_b)
        batched = hash_join(t1a, t2a, "k", "fk", om_bytes)
        reference = reference_hash_join(t1b, t2b, "k", "fk", om_bytes)
        assert_enclaves_match(enclave_a, enclave_b)
        assert sorted(batched.rows()) == sorted(reference.rows())
        assert batched._used == reference._used

    def test_hash_join_trace_is_data_independent(self) -> None:
        """All-match and no-match probes must leave identical traces."""
        enclave_a, enclave_b = self._enclaves()
        t1a, t2a = fresh_join_tables(enclave_a)
        t1b = FlatStorage(enclave_b, SCHEMA, 8)
        for i, (_, v) in enumerate(T1_ROWS):
            t1b.fast_insert((100 + i, v))  # keys that never match
        t2b = FlatStorage(enclave_b, T2_SCHEMA, 8)
        for row in T2_ROWS:
            t2b.fast_insert(row)
        hash_join(t1a, t2a, "k", "fk", self.OM_SINGLE)
        hash_join(t1b, t2b, "k", "fk", self.OM_SINGLE)
        assert enclave_a.trace.matches(enclave_b.trace)

    def test_opaque_join_union_and_merge(self) -> None:
        enclave_a, enclave_b = self._enclaves()
        t1a, t2a = fresh_join_tables(enclave_a)
        t1b, t2b = fresh_join_tables(enclave_b)
        batched = opaque_join(t1a, t2a, "k", "fk", 1 << 16)
        reference = reference_sort_merge_join(t1b, t2b, "k", "fk", 1 << 16)
        assert_enclaves_match(enclave_a, enclave_b)
        assert batched.rows() == reference.rows()
        assert batched._used == reference._used

    def test_zero_om_join_union_and_merge(self) -> None:
        enclave_a, enclave_b = self._enclaves()
        t1a, t2a = fresh_join_tables(enclave_a)
        t1b, t2b = fresh_join_tables(enclave_b)
        batched = zero_om_join(t1a, t2a, "k", "fk", enclave_rows=4)
        reference = reference_sort_merge_join(
            t1b, t2b, "k", "fk", None, enclave_rows=4
        )
        assert_enclaves_match(enclave_a, enclave_b)
        assert batched.rows() == reference.rows()

    def test_chunked_join_paths(self, monkeypatch: pytest.MonkeyPatch) -> None:
        """Tiny chunks force every pass across chunk boundaries; the merge
        scan's last-seen-primary state must carry between chunks."""
        import repro.storage.flat as flat

        monkeypatch.setattr(flat, "_CHUNK_BLOCKS", 3)
        enclave_a, enclave_b = self._enclaves()
        t1a, t2a = fresh_join_tables(enclave_a)
        t1b, t2b = fresh_join_tables(enclave_b)
        batched = opaque_join(t1a, t2a, "k", "fk", 1 << 16)
        reference = reference_sort_merge_join(t1b, t2b, "k", "fk", 1 << 16)
        assert_enclaves_match(enclave_a, enclave_b)
        assert batched.rows() == reference.rows()

        enclave_c, enclave_d = self._enclaves()
        t1c, t2c = fresh_join_tables(enclave_c)
        t1d, t2d = fresh_join_tables(enclave_d)
        batched = hash_join(t1c, t2c, "k", "fk", self.OM_SINGLE)
        reference = reference_hash_join(t1d, t2d, "k", "fk", self.OM_SINGLE)
        assert_enclaves_match(enclave_c, enclave_d)
        assert sorted(batched.rows()) == sorted(reference.rows())


def reference_sorted_group_aggregate(
    table: FlatStorage, group_column: str, specs, predicate
) -> FlatStorage:
    """The seed's sort-based grouped aggregation: per-row filter-copy front
    (R table[i], W scratch[i] per row) around the production sorter and the
    unchanged merge-emit loop."""
    enclave = table.enclave
    schema = table.schema
    matches = (predicate or TruePredicate()).compile(schema)
    group_index = schema.column_index(group_column)
    columns = [
        schema.column_index(spec.column) if spec.column is not None else None
        for spec in specs
    ]
    scratch = FlatStorage(enclave, schema, padded_scratch(max(1, table.capacity)))
    dummy = frame_dummy(schema)
    for index in range(table.capacity):
        framed = table.read_framed(index)
        row = unframe_row(schema, framed)
        keep = row is not None and matches(row)
        scratch.write_framed(index, framed if keep else dummy)
    sort_column = schema.column(group_column)

    def sort_key(row: Row) -> tuple:
        return (sort_column.sort_key(row[group_index]),)

    row_bytes = schema.row_size + 1
    chunk_rows = enclave.oblivious.free_bytes // (2 * row_bytes)
    if chunk_rows >= 2 and scratch.capacity >= 2:
        chunk = 1
        while chunk * 2 <= chunk_rows and chunk * 2 <= scratch.capacity:
            chunk *= 2
        external_oblivious_sort(scratch, sort_key, chunk)
    else:
        bitonic_sort(scratch, sort_key)

    out_schema = _group_output_schema(schema, group_column, specs)
    output = FlatStorage(enclave, out_schema, scratch.capacity + 1)
    open_key = None
    accumulators: list[_Accumulator] = []
    emitted = 0

    def completed_row() -> tuple:
        return (open_key,) + tuple(
            float(accumulator.result()) for accumulator in accumulators
        )

    for index in range(scratch.capacity):
        row = scratch.read_row(index)
        group_ended = open_key is not None and (
            row is None or row[group_index] != open_key
        )
        if group_ended:
            output.write_row(index, completed_row())
            emitted += 1
            open_key = None
        else:
            output.write_row(index, None)
        if row is not None:
            if open_key is None:
                open_key = row[group_index]
                accumulators = [_Accumulator(spec) for spec in specs]
            for accumulator, column in zip(accumulators, columns):
                accumulator.add(row[column] if column is not None else None)
    if open_key is not None:
        output.write_row(scratch.capacity, completed_row())
        emitted += 1
    else:
        output.write_row(scratch.capacity, None)
    output._used = emitted
    scratch.free()
    return output


class TestAggregateFilterCopyEquivalence:
    """Batched filter-copy front of the sorted GROUP BY fallback vs the
    seed's per-row R-table/W-scratch loop."""

    SPECS = [
        AggregateSpec(AggregateFunction.COUNT),
        AggregateSpec(AggregateFunction.SUM, "k"),
    ]

    def _tables(self) -> tuple[FlatStorage, FlatStorage]:
        batched, reference = fresh_pair(8, ROWS)
        return batched, reference

    @pytest.mark.parametrize(
        "predicate", [None, Comparison("k", ">=", 2)], ids=["unfiltered", "filtered"]
    )
    def test_filter_copy_front(self, predicate) -> None:
        batched, reference = self._tables()
        got = _sorted_group_aggregate(batched, "k", self.SPECS, predicate)
        want = reference_sorted_group_aggregate(
            reference, "k", self.SPECS, predicate
        )
        assert_traces_match(batched, reference)
        assert sorted(got.rows()) == sorted(want.rows())

    def test_filter_copy_trace_is_data_independent(self) -> None:
        none_match, all_match = self._tables()
        _sorted_group_aggregate(
            none_match, "k", self.SPECS, Comparison("k", ">", 10**6)
        )
        _sorted_group_aggregate(
            all_match, "k", self.SPECS, Comparison("k", ">=", 0)
        )
        assert none_match.enclave.trace.matches(all_match.enclave.trace)

    def test_chunked_filter_copy(self, monkeypatch: pytest.MonkeyPatch) -> None:
        import repro.storage.flat as flat

        monkeypatch.setattr(flat, "_CHUNK_BLOCKS", 3)
        batched, reference = self._tables()
        got = _sorted_group_aggregate(batched, "k", self.SPECS, None)
        want = reference_sorted_group_aggregate(reference, "k", self.SPECS, None)
        assert_traces_match(batched, reference)
        assert sorted(got.rows()) == sorted(want.rows())


class TestCopyToEquivalence:
    """Batched ``copy_to`` vs the per-row loop, across chunk boundaries."""

    def test_chunked_copy_to(self, monkeypatch: pytest.MonkeyPatch) -> None:
        import repro.storage.flat as flat

        monkeypatch.setattr(flat, "_CHUNK_BLOCKS", 3)
        batched, reference = fresh_pair(8, ROWS)
        copied = batched.copy_to(capacity=16)
        target = FlatStorage(reference.enclave, SCHEMA, 16, ledger=reference._ledger)
        for index in range(reference.capacity):
            target.write_framed(index, reference.read_framed(index))
        assert_traces_match(batched, reference)
        assert copied.rows() == target.rows()
        assert copied.used_rows == reference.used_rows


class TestRingORAMEquivalence:
    """Batched slot pipeline vs. the seed's per-slot loops, covering online
    reads, scheduled evictions, and early reshuffles."""

    CAPACITY = 24

    def _pair(
        self, seed: int = 7, **kwargs
    ) -> tuple[RingORAM, RingORAM, Enclave, Enclave]:
        enclave_a = Enclave(cipher="authenticated", keep_trace_events=True)
        enclave_b = Enclave(cipher="authenticated", keep_trace_events=True)
        batched = RingORAM(
            enclave_a, self.CAPACITY, block_size=16, rng=random.Random(seed), **kwargs
        )
        reference = ReferenceRingORAM(
            enclave_b, self.CAPACITY, block_size=16, rng=random.Random(seed), **kwargs
        )
        return batched, reference, enclave_a, enclave_b

    def test_init_trace_matches_per_slot_loop(self) -> None:
        _, _, enclave_a, enclave_b = self._pair()
        assert_enclaves_match(enclave_a, enclave_b)

    def test_reads_writes_dummies_with_evictions(self) -> None:
        batched, reference, enclave_a, enclave_b = self._pair()
        rng = random.Random(13)
        for step in range(300):
            block = rng.randrange(self.CAPACITY)
            kind = step % 3
            if kind == 0:
                payload = bytes([rng.randrange(256) for _ in range(8)])
                batched.write(block, payload)
                reference.write(block, payload)
            elif kind == 1:
                assert batched.read(block) == reference.read(block)
            else:
                batched.dummy_access()
                reference.dummy_access()
        assert_enclaves_match(enclave_a, enclave_b)
        assert batched._position == reference._position
        assert batched._stash == reference._stash
        for meta_a, meta_b in zip(batched._meta, reference._meta):
            assert meta_a.slots == meta_b.slots
            assert meta_a.valid == meta_b.valid
            assert meta_a.reads_since_shuffle == meta_b.reads_since_shuffle

    def test_early_reshuffles_match(self) -> None:
        """A tiny dummy budget (s=2) forces early reshuffles constantly."""
        batched, reference, enclave_a, enclave_b = self._pair(
            seed=21, s=2, eviction_rate=7
        )
        rng = random.Random(17)
        for _ in range(150):
            block = rng.randrange(self.CAPACITY)
            if rng.random() < 0.5:
                payload = bytes([rng.randrange(256) for _ in range(4)])
                batched.write(block, payload)
                reference.write(block, payload)
            else:
                assert batched.read(block) == reference.read(block)
        assert_enclaves_match(enclave_a, enclave_b)


# ---------------------------------------------------------------------------
# Oblivious shuffle & compaction subsystem (repro.oblivious)
# ---------------------------------------------------------------------------

from repro.enclave.integrity import RevisionLedger  # noqa: E402
from repro.oblivious.compact import oblivious_compact  # noqa: E402
from repro.oblivious.shuffle import (  # noqa: E402
    _ENTRY_HEADER,
    oblivious_shuffle,
    plan_shuffle,
    shuffle_geometry,
)


def reference_shuffle(table: FlatStorage, rng: random.Random) -> FlatStorage:
    """The per-row bucket shuffle: same planning (same rng draws, same
    permutation) as production, but every observable access is a scalar
    read/write with scalar seal/open — one trace event per call."""
    enclave = table.enclave
    geometry = shuffle_geometry(table.capacity)
    perm, cells = plan_shuffle(geometry, rng)
    frame_bytes = framed_size(table.schema)
    filler = _ENTRY_HEADER.pack(-1) + b"\x00" * frame_bytes

    scratch_region = enclave.fresh_region_name("shuffle")
    enclave.untrusted.allocate_region(scratch_region, geometry.scratch_capacity)
    ledger = RevisionLedger()

    # Pass 1: scalar read per input slot, scalar sealed write per cell slot.
    for chunk in range(geometry.chunks):
        start = chunk * geometry.chunk_rows
        count = min(geometry.chunk_rows, geometry.n - start)
        frames = [table.read_framed(start + i) for i in range(count)]
        entries: list[bytes] = []
        for bucket in range(geometry.buckets):
            cell = cells[chunk][bucket]
            entries.extend(
                _ENTRY_HEADER.pack(perm[index]) + frames[index - start]
                for index in cell
            )
            entries.extend([filler] * (geometry.cell_slots - len(cell)))
        for slot, entry in zip(geometry.distribute_indices(chunk), entries):
            revision = ledger.next_revision(scratch_region, slot)
            aad = ledger.associated_data(scratch_region, slot, revision)
            enclave.untrusted.write(scratch_region, slot, enclave.seal(entry, aad))
            ledger.commit(scratch_region, slot, revision)

    # Pass 2: scalar read per bucket slot, scalar write per output slot.
    output = FlatStorage(enclave, table.schema, geometry.n)
    for bucket in range(geometry.buckets):
        base = bucket * geometry.bucket_slots
        entries_out = []
        for offset in range(geometry.bucket_slots):
            sealed = enclave.untrusted.read(scratch_region, base + offset)
            aad = ledger.associated_data(
                scratch_region,
                base + offset,
                ledger.current(scratch_region, base + offset),
            )
            plaintext = enclave.open(sealed, aad)
            (target,) = _ENTRY_HEADER.unpack_from(plaintext, 0)
            if target >= 0:
                entries_out.append((target, plaintext[_ENTRY_HEADER.size :]))
        entries_out.sort(key=lambda entry: entry[0])
        seg_start, _ = geometry.segment(bucket)
        for offset, (_, framed) in enumerate(entries_out):
            output.write_framed(seg_start + offset, framed)

    enclave.untrusted.free_region(scratch_region)
    ledger.forget_region(scratch_region)
    output._used = table.used_rows
    output._next_fast_insert = output.capacity
    return output


def reference_compact(table: FlatStorage, keep=None) -> int:
    """The per-block compaction: scalar marking scan, then per level one
    scalar read of i, one of i+D, one write of i — the loops the batched
    schedule pass replaces."""
    n = table.capacity
    schema = table.schema
    flags = []
    for index in range(n):
        framed = table.read_framed(index)
        if keep is None:
            flags.append(not is_dummy(framed))
        else:
            row = unframe_row(schema, framed)
            flags.append(row is not None and keep(row))
    kept = sum(flags)

    shifts = [0] * n
    occupied = [False] * n
    rank = 0
    for index, flag in enumerate(flags):
        if flag:
            shifts[index] = index - rank
            occupied[index] = True
            rank += 1

    from repro.storage.rows import frame_dummy as _dummy_frame

    dummy = _dummy_frame(schema)
    distance = 1
    while distance < n:
        for index in range(n):
            low = table.read_framed(index)
            high = None
            partner = index + distance
            if partner < n:
                high = table.read_framed(partner)
            if partner < n and occupied[partner] and shifts[partner] & distance:
                table.write_framed(index, high)
            elif occupied[index] and not (shifts[index] & distance):
                table.write_framed(index, low)
            else:
                table.write_framed(index, dummy)
        new_shifts = [0] * n
        new_occupied = [False] * n
        for index in range(n):
            if occupied[index] and not (shifts[index] & distance):
                new_shifts[index] = shifts[index]
                new_occupied[index] = True
            partner = index + distance
            if partner < n and occupied[partner] and shifts[partner] & distance:
                new_shifts[index] = shifts[partner] - distance
                new_occupied[index] = True
        shifts, occupied = new_shifts, new_occupied
        distance *= 2

    table._used = kept
    return kept


class TestShuffleEquivalence:
    """Batched bucket shuffle vs the per-row reference, plus the
    data-independence guarantee (trace a pure function of n)."""

    ROWS17 = [(i * 11 % 23, f"s{i}") for i in range(17)]

    def test_trace_payloads_and_permutation_match(self) -> None:
        batched, reference = fresh_pair(24, self.ROWS17)
        out_a = oblivious_shuffle(batched, random.Random(42))
        out_b = reference_shuffle(reference, random.Random(42))
        assert_traces_match(batched, reference)
        got = [
            unframe_row(SCHEMA, framed) for _, framed in out_a.scan_framed()
        ]
        want = [
            unframe_row(SCHEMA, framed) for _, framed in out_b.scan_framed()
        ]
        assert got == want  # same secret permutation applied
        assert sorted(out_a.rows()) == sorted(batched.rows())
        assert out_a.used_rows == batched.used_rows

    def test_trace_is_data_and_permutation_independent(self) -> None:
        """Different plaintexts AND different permutations: same trace."""
        a, _ = fresh_pair(24, self.ROWS17)
        b, _ = fresh_pair(24, [(9, "z")] * 3)
        a.enclave.trace.clear()
        b.enclave.trace.clear()
        oblivious_shuffle(a, random.Random(1))
        oblivious_shuffle(b, random.Random(2))
        assert a.enclave.trace.matches(b.enclave.trace)

    def test_chunked_shuffle(self, monkeypatch: pytest.MonkeyPatch) -> None:
        import repro.storage.flat as flat

        monkeypatch.setattr(flat, "_CHUNK_BLOCKS", 3)
        batched, reference = fresh_pair(24, self.ROWS17)
        out_a = oblivious_shuffle(batched, random.Random(5))
        out_b = reference_shuffle(reference, random.Random(5))
        assert_traces_match(batched, reference)
        assert out_a.rows() == out_b.rows()


class TestCompactEquivalence:
    """Batched compaction network vs the per-block reference loops."""

    SCATTERED = [(i, f"c{i}") for i in range(11)]

    def _pair_with_holes(self) -> tuple[FlatStorage, FlatStorage]:
        batched, reference = fresh_pair(16, [])
        for t in (batched, reference):
            for i, row in zip((0, 2, 3, 7, 8, 9, 13, 15), self.SCATTERED):
                t.write_row(i, row)
                t._used += 1
        return batched, reference

    def test_trace_result_and_order_match(self) -> None:
        batched, reference = self._pair_with_holes()
        kept_a = oblivious_compact(batched)
        kept_b = reference_compact(reference)
        assert kept_a == kept_b == 8
        assert_traces_match(batched, reference)
        rows_a = [batched.read_row(i) for i in range(batched.capacity)]
        rows_b = [reference.read_row(i) for i in range(reference.capacity)]
        assert rows_a == rows_b
        # Order-preserving: the keepers appear in input order, then dummies.
        assert rows_a[:8] == list(self.SCATTERED[:8])
        assert all(row is None for row in rows_a[8:])

    def test_filter_compact_with_predicate(self) -> None:
        batched, reference = self._pair_with_holes()
        keep = lambda row: row[0] % 2 == 0  # noqa: E731
        kept_a = oblivious_compact(batched, keep=keep)
        kept_b = reference_compact(reference, keep=keep)
        assert kept_a == kept_b
        assert_traces_match(batched, reference)
        assert batched.rows() == reference.rows()

    def test_trace_is_selectivity_independent(self) -> None:
        """Zero keepers and all keepers: identical traces."""
        none_keep, all_keep = fresh_pair(16, [(i, "x") for i in range(12)])
        oblivious_compact(none_keep, keep=lambda row: False)
        oblivious_compact(all_keep, keep=lambda row: True)
        assert none_keep.enclave.trace.matches(all_keep.enclave.trace)

    def test_chunked_compact(self, monkeypatch: pytest.MonkeyPatch) -> None:
        """Chunks split the R/R/W step groups mid-group; the carried state
        must keep the result and trace identical."""
        import repro.storage.flat as flat

        monkeypatch.setattr(flat, "_CHUNK_BLOCKS", 3)
        batched, reference = self._pair_with_holes()
        assert oblivious_compact(batched) == reference_compact(reference)
        assert_traces_match(batched, reference)
        assert [batched.read_row(i) for i in range(16)] == [
            reference.read_row(i) for i in range(16)
        ]


class TestFramedGatherScatterEquivalence:
    """read_at_framed / write_at_framed / exchange_schedule_framed must
    record their per-slot loops' exact traces."""

    def test_read_write_at_framed(self) -> None:
        batched, reference = fresh_pair(16, [(i, "x") for i in range(10)])
        indices = [0, 7, 3, 12]
        frames = [frame_row_validated(SCHEMA, (90 + i, "w")) for i in range(4)]
        got = batched.read_at_framed(indices)
        batched.write_at_framed(indices, frames)
        want = [reference.read_framed(i) for i in indices]
        for i, framed in zip(indices, frames):
            reference.write_framed(i, framed)
        assert [is_dummy(f) for f in got] == [is_dummy(f) for f in want]
        assert_traces_match(batched, reference)
        assert batched.rows() == reference.rows()

    def test_chunked_write_at_framed(self, monkeypatch: pytest.MonkeyPatch) -> None:
        import repro.storage.flat as flat

        monkeypatch.setattr(flat, "_CHUNK_BLOCKS", 3)
        batched, reference = fresh_pair(16, [(i, "x") for i in range(10)])
        indices = [1, 5, 9, 0, 14, 2, 11]
        frames = [frame_row_validated(SCHEMA, (50 + i, "y")) for i in range(7)]
        batched.write_at_framed(indices, frames)
        for i, framed in zip(indices, frames):
            reference.write_framed(i, framed)
        assert_traces_match(batched, reference)
        assert batched.rows() == reference.rows()

    def test_schedule_pass_matches_scalar_loop(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        schedule = [
            ("R", 0), ("R", 3), ("W", 0),
            ("R", 1), ("R", 4), ("W", 1),
            ("R", 2), ("W", 2),
        ]
        swap = frame_row_validated(SCHEMA, (77, "sw"))

        def transform(steps, frames):
            return [swap] * sum(1 for op, _ in steps if op == "W")

        batched.exchange_schedule_framed(schedule, transform)
        for op, index in schedule:
            if op == "R":
                reference.read_framed(index)
            else:
                reference.write_framed(index, swap)
        assert_traces_match(batched, reference)
        assert batched.rows() == reference.rows()

    def test_schedule_rejects_read_after_write_across_chunks(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        from repro.enclave.errors import StorageError

        import repro.storage.flat as flat

        monkeypatch.setattr(flat, "_CHUNK_BLOCKS", 2)
        table, _ = fresh_pair(8, ROWS)
        schedule = [("W", 0), ("W", 1), ("R", 0), ("W", 2)]
        dummy = frame_dummy(SCHEMA)
        with pytest.raises(StorageError, match="stale"):
            table.exchange_schedule_framed(
                schedule,
                lambda steps, frames: [dummy]
                * sum(1 for op, _ in steps if op == "W"),
            )

"""Trace-equivalence tests for the batched sealed-block data path.

The range/batch APIs (``read_range_framed``, ``write_range_framed``,
``exchange_framed``, ``exchange_pairs_framed`` and everything built on them:
scans, insert/update/delete passes, the bitonic sorters) exist purely to
amortize simulator overhead.  The obliviousness argument of the paper rests
on the *observable access sequence*, so batching must be invisible to the
adversary: same regions, same indices, same order, same read/write
interleaving as the per-block loops.

Every test here replays an operation once through the batched production
code and once through a hand-rolled per-block reference loop (using only the
single-block primitives ``read_framed``/``write_framed``/``read_row``/
``write_row``, each of which records exactly one trace event), then asserts
the two enclaves' traces are identical event for event.  These are the
regression guard for the paper's security property.
"""

from __future__ import annotations

import pytest

from repro.enclave import Enclave
from repro.operators.sort import bitonic_sort, external_oblivious_sort
from repro.storage import FlatStorage, Schema
from repro.storage.rows import frame_row_validated, is_dummy, unframe_row
from repro.storage.schema import int_column, str_column


SCHEMA = Schema([int_column("k"), str_column("v", 8)])


def fresh_pair(capacity: int, rows: list[tuple]) -> tuple[FlatStorage, FlatStorage]:
    """Two identically-populated tables in two fresh enclaves.

    Fresh enclaves share region-name counters (both tables are ``flat#1``),
    so identical operations must yield byte-identical traces.
    """
    tables = []
    for _ in range(2):
        enclave = Enclave(cipher="authenticated", keep_trace_events=True)
        table = FlatStorage(enclave, SCHEMA, capacity)
        for row in rows:
            table.fast_insert(row)
        tables.append(table)
    return tables[0], tables[1]


def assert_traces_match(a: FlatStorage, b: FlatStorage) -> None:
    trace_a, trace_b = a.enclave.trace, b.enclave.trace
    assert len(trace_a) == len(trace_b)
    assert [(e.op, e.region, e.index) for e in trace_a.events] == [
        (e.op, e.region, e.index) for e in trace_b.events
    ]
    assert trace_a.matches(trace_b)


ROWS = [(i * 13 % 7, f"r{i}") for i in range(5)]


class TestScanEquivalence:
    def test_batched_scan_matches_per_block_reads(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        got = [unframe_row(SCHEMA, framed) for _, framed in batched.scan_framed()]
        want = [reference.read_row(i) for i in range(reference.capacity)]
        assert got == want
        assert_traces_match(batched, reference)

    def test_rows_matches_per_block_scan(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        assert batched.rows() == [
            row for _, row in reference.scan() if row is not None
        ]
        assert_traces_match(batched, reference)

    def test_range_read_is_n_single_reads(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        frames = batched.read_range_framed(2, 4)
        want = [reference.read_framed(i) for i in range(2, 6)]
        assert [is_dummy(f) for f in frames] == [is_dummy(f) for f in want]
        assert_traces_match(batched, reference)

    def test_range_write_is_n_single_writes(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        frames = [frame_row_validated(SCHEMA, (9, "x"))] * 3
        batched.write_range_framed(1, frames)
        for i, framed in enumerate(frames, 1):
            reference.write_framed(i, framed)
        assert_traces_match(batched, reference)


class TestPassEquivalence:
    def test_insert_pass(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        batched.insert((42, "new"))
        # Reference: the seed's per-block read/write pass.
        framed_new = frame_row_validated(SCHEMA, (42, "new"))
        inserted = False
        for index in range(reference.capacity):
            framed = reference.read_framed(index)
            if not inserted and is_dummy(framed):
                reference.write_framed(index, framed_new)
                inserted = True
            else:
                reference.write_framed(index, framed)
        assert inserted
        assert_traces_match(batched, reference)
        assert sorted(batched.rows()) == sorted(reference.rows())

    def test_update_pass(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        predicate = lambda row: row[0] % 2 == 0  # noqa: E731
        assign = lambda row: (row[0], "upd")  # noqa: E731
        batched.update(predicate, assign)
        for index in range(reference.capacity):
            framed = reference.read_framed(index)
            row = unframe_row(SCHEMA, framed)
            if row is not None and predicate(row):
                reference.write_framed(index, frame_row_validated(SCHEMA, assign(row)))
            else:
                reference.write_framed(index, framed)
        assert_traces_match(batched, reference)
        assert sorted(batched.rows()) == sorted(reference.rows())

    def test_update_trace_is_data_independent(self) -> None:
        """Zero matches and all matches must leave identical traces."""
        none_match, all_match = fresh_pair(8, ROWS)
        none_match.update(lambda row: False, lambda row: row)
        all_match.update(lambda row: True, lambda row: (row[0], "y"))
        assert_traces_match(none_match, all_match)

    def test_delete_pass(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        predicate = lambda row: row[0] < 3  # noqa: E731
        batched.delete(predicate)
        for index in range(reference.capacity):
            framed = reference.read_framed(index)
            row = unframe_row(SCHEMA, framed)
            if row is not None and predicate(row):
                reference.write_row(index, None)
            else:
                reference.write_framed(index, framed)
        assert_traces_match(batched, reference)
        assert sorted(batched.rows()) == sorted(reference.rows())

    def test_copy_to_keeps_interleaved_pattern(self) -> None:
        batched, reference = fresh_pair(4, ROWS[:3])
        batched.copy_to(capacity=8)
        # Reference: allocate the target (its init writes one dummy pass),
        # then the per-block interleaved read-source/write-target loop.
        target = FlatStorage(
            reference.enclave, SCHEMA, 8, ledger=reference._ledger
        )
        for index in range(reference.capacity):
            target.write_framed(index, reference.read_framed(index))
        assert_traces_match(batched, reference)


def reference_bitonic_sort(table: FlatStorage, key, enclave_rows: int = 1) -> None:
    """The seed's per-block bitonic sort: one trace event per access."""

    def lifted(row):
        return (1,) if row is None else (0,) + key(row)

    n = table.capacity
    enclave = table.enclave

    def load_sort_store(lo: int, length: int, ascending: bool) -> None:
        rows = [table.read_row(lo + i) for i in range(length)]
        rows.sort(key=lifted, reverse=not ascending)
        enclave.cost.record_comparisons(length * max(1, length.bit_length()))
        for i, row in enumerate(rows):
            table.write_row(lo + i, row)

    def compare_exchange(i: int, j: int, ascending: bool) -> None:
        a = table.read_row(i)
        b = table.read_row(j)
        enclave.cost.record_comparisons(1)
        if (lifted(a) > lifted(b)) == ascending:
            a, b = b, a
        table.write_row(i, a)
        table.write_row(j, b)

    def merge(lo: int, length: int, ascending: bool) -> None:
        if length <= 1:
            return
        if length <= enclave_rows:
            load_sort_store(lo, length, ascending)
            return
        half = length // 2
        for i in range(lo, lo + half):
            compare_exchange(i, i + half, ascending)
        merge(lo, half, ascending)
        merge(lo + half, half, ascending)

    def sort(lo: int, length: int, ascending: bool) -> None:
        if length <= 1:
            return
        if length <= enclave_rows:
            load_sort_store(lo, length, ascending)
            return
        half = length // 2
        sort(lo, half, True)
        sort(lo + half, half, False)
        merge(lo, length, ascending)

    sort(0, n, True)


class TestSortEquivalence:
    KEY = staticmethod(lambda row: (row[0], row[1]))

    def test_bitonic_network_trace_and_result(self) -> None:
        rows = [(i * 7 % 11, f"r{i}") for i in range(11)]
        batched, reference = fresh_pair(16, rows)
        bitonic_sort(batched, self.KEY)
        reference_bitonic_sort(reference, self.KEY)
        assert_traces_match(batched, reference)
        # Cost model must agree too (comparisons, block transfers).
        assert batched.enclave.cost.snapshot() == reference.enclave.cost.snapshot()
        got = batched.rows()
        assert got == reference.rows()
        assert [row[0] for row in got] == sorted(row[0] for row in got)

    def test_bitonic_cutover_trace_and_result(self) -> None:
        rows = [(i * 5 % 9, f"r{i}") for i in range(9)]
        batched, reference = fresh_pair(16, rows)
        bitonic_sort(batched, self.KEY, enclave_rows=4)
        reference_bitonic_sort(reference, self.KEY, enclave_rows=4)
        assert_traces_match(batched, reference)
        assert batched.enclave.cost.snapshot() == reference.enclave.cost.snapshot()
        assert batched.rows() == reference.rows()

    def test_bitonic_trace_is_data_independent(self) -> None:
        """Two different datasets of equal size: identical sort traces."""
        a, _ = fresh_pair(16, [(i, "a") for i in range(12)])
        b, _ = fresh_pair(16, [(100 - i, "b") for i in range(12)])
        bitonic_sort(a, self.KEY)
        bitonic_sort(b, self.KEY)
        assert a.enclave.trace.matches(b.enclave.trace)

    def test_external_sort_merge_split_trace(self) -> None:
        """Merge-split runs read run/read run/write run/write run, exactly
        as the per-block loops did; result stays sorted."""
        rows = [(i * 3 % 13, f"r{i}") for i in range(13)]
        batched, reference = fresh_pair(16, rows)
        external_oblivious_sort(batched, self.KEY, chunk_rows=4)

        # Reference: per-block implementation of the same chunked algorithm.
        def lifted(row):
            return (1,) if row is None else (0,) + self.KEY(row)

        chunk_rows = 4
        n = reference.capacity
        num_chunks = n // chunk_rows
        with reference.enclave.oblivious_buffer(
            2 * chunk_rows * (reference.schema.row_size + 1)
        ):
            for chunk in range(num_chunks):
                lo = chunk * chunk_rows
                rows_ = [reference.read_row(lo + i) for i in range(chunk_rows)]
                rows_.sort(key=lifted)
                reference.enclave.cost.record_comparisons(
                    chunk_rows * max(1, chunk_rows.bit_length())
                )
                for i, row in enumerate(rows_):
                    reference.write_row(lo + i, row)

            def merge_split(left: int, right: int, ascending: bool) -> None:
                lo_left = left * chunk_rows
                lo_right = right * chunk_rows
                rows_ = [reference.read_row(lo_left + i) for i in range(chunk_rows)]
                rows_ += [reference.read_row(lo_right + i) for i in range(chunk_rows)]
                rows_.sort(key=lifted, reverse=not ascending)
                reference.enclave.cost.record_comparisons(
                    2 * chunk_rows * max(1, (2 * chunk_rows).bit_length())
                )
                for i in range(chunk_rows):
                    reference.write_row(lo_left + i, rows_[i])
                for i in range(chunk_rows):
                    reference.write_row(lo_right + i, rows_[chunk_rows + i])

            k = 2
            while k <= num_chunks:
                j = k // 2
                while j >= 1:
                    for i in range(num_chunks):
                        partner = i ^ j
                        if partner > i:
                            merge_split(i, partner, (i & k) == 0)
                    j //= 2
                k *= 2

        assert_traces_match(batched, reference)
        assert batched.rows() == reference.rows()


class TestChunkedPassEquivalence:
    """Full-table passes split into bounded chunks must stay trace-identical.

    ``_CHUNK_BLOCKS`` is shrunk below the table size so every pass crosses
    chunk boundaries (production value is 1024, far above these tables).
    """

    @pytest.fixture(autouse=True)
    def small_chunks(self, monkeypatch: pytest.MonkeyPatch) -> None:
        import repro.storage.flat as flat

        monkeypatch.setattr(flat, "_CHUNK_BLOCKS", 3)

    def test_chunked_scan_matches_per_block_reads(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        got = [unframe_row(SCHEMA, framed) for _, framed in batched.scan_framed()]
        want = [reference.read_row(i) for i in range(reference.capacity)]
        assert got == want
        assert_traces_match(batched, reference)

    def test_chunked_update_pass(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        predicate = lambda row: row[0] % 2 == 0  # noqa: E731
        assign = lambda row: (row[0], "upd")  # noqa: E731
        batched.update(predicate, assign)
        for index in range(reference.capacity):
            framed = reference.read_framed(index)
            row = unframe_row(SCHEMA, framed)
            if row is not None and predicate(row):
                reference.write_framed(index, frame_row_validated(SCHEMA, assign(row)))
            else:
                reference.write_framed(index, framed)
        assert_traces_match(batched, reference)
        assert sorted(batched.rows()) == sorted(reference.rows())

    def test_chunked_range_write(self) -> None:
        batched, reference = fresh_pair(8, ROWS)
        frames = [frame_row_validated(SCHEMA, (i, "x")) for i in range(7)]
        batched.write_range_framed(0, frames)
        for i, framed in enumerate(frames):
            reference.write_framed(i, framed)
        assert_traces_match(batched, reference)
        assert batched.rows() == reference.rows()


class TestBatchSemantics:
    def test_exchange_pass_rejects_wrong_block_count(self) -> None:
        from repro.enclave.errors import StorageError

        table, _ = fresh_pair(4, ROWS[:2])
        with pytest.raises(StorageError):
            table.enclave.untrusted.exchange_range(
                table.region_name, 0, 4, lambda blocks: blocks[:-1]
            )

    def test_range_read_out_of_bounds(self) -> None:
        from repro.enclave.errors import StorageError

        table, _ = fresh_pair(4, ROWS[:2])
        with pytest.raises(StorageError):
            table.read_range_framed(2, 4)

    def test_batched_ciphertexts_are_fresh(self) -> None:
        """A batched dummy pass must re-randomise every ciphertext."""
        table, _ = fresh_pair(4, ROWS[:2])
        before = [table.enclave.untrusted.peek(table.region_name, i) for i in range(4)]
        table.exchange_framed(0, 4, lambda index, framed: framed)
        after = [table.enclave.untrusted.peek(table.region_name, i) for i in range(4)]
        for old, new in zip(before, after):
            assert old.nonce != new.nonce or old.ciphertext != new.ciphertext

"""Unit tests for the oblivious B+ tree."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave, StorageError
from repro.storage import ObliviousBPlusTree, Schema, int_column, str_column


def make_tree(
    enclave: Enclave, schema: Schema, capacity: int = 200, order: int = 8, seed: int = 1
) -> ObliviousBPlusTree:
    return ObliviousBPlusTree(
        enclave, schema, "key", capacity, order=order, rng=random.Random(seed)
    )


class TestBasicOperations:
    def test_empty_tree(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        assert tree.count == 0
        assert tree.height == 0
        assert tree.search(1) == []
        assert tree.range_scan(None, None) == []

    def test_single_insert_and_search(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        tree.insert((5, "five"))
        assert tree.search(5) == [(5, "five")]
        assert tree.search(6) == []
        assert tree.height == 1

    def test_sequential_inserts(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        for key in range(100):
            tree.insert((key, f"v{key}"))
        assert tree.count == 100
        for key in (0, 50, 99):
            assert tree.search(key) == [(key, f"v{key}")]

    def test_random_order_inserts(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        keys = list(range(120))
        random.Random(5).shuffle(keys)
        for key in keys:
            tree.insert((key, f"v{key}"))
        assert [row[0] for row in tree.items()] == sorted(keys)

    def test_descending_inserts(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        for key in reversed(range(60)):
            tree.insert((key, "x"))
        assert [row[0] for row in tree.items()] == list(range(60))

    def test_duplicate_keys(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        tree.insert((7, "a"))
        tree.insert((7, "b"))
        tree.insert((7, "c"))
        assert sorted(row[1] for row in tree.search(7)) == ["a", "b", "c"]

    def test_string_keys(self, fast_enclave: Enclave) -> None:
        schema = Schema([str_column("key", 10), int_column("v")])
        tree = ObliviousBPlusTree(
            fast_enclave, schema, "key", 64, rng=random.Random(2)
        )
        dates = ["2018-03-01", "2018-01-15", "2018-09-30", "2017-12-31"]
        for i, date in enumerate(dates):
            tree.insert((date, i))
        assert [row[0] for row in tree.items()] == sorted(dates)
        assert tree.search("2018-01-15") == [("2018-01-15", 1)]

    def test_capacity_enforced(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema, capacity=4)
        for key in range(4):
            tree.insert((key, "x"))
        with pytest.raises(StorageError):
            tree.insert((9, "x"))


class TestRangeScan:
    @pytest.fixture
    def tree(self, fast_enclave: Enclave, kv_schema: Schema) -> ObliviousBPlusTree:
        tree = make_tree(fast_enclave, kv_schema)
        keys = list(range(0, 100, 2))  # even keys
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert((key, f"v{key}"))
        return tree

    def test_inclusive_bounds(self, tree: ObliviousBPlusTree) -> None:
        rows = tree.range_scan(10, 20)
        assert [row[0] for row in rows] == [10, 12, 14, 16, 18, 20]

    def test_bounds_between_keys(self, tree: ObliviousBPlusTree) -> None:
        rows = tree.range_scan(9, 21)
        assert [row[0] for row in rows] == [10, 12, 14, 16, 18, 20]

    def test_open_low(self, tree: ObliviousBPlusTree) -> None:
        rows = tree.range_scan(None, 6)
        assert [row[0] for row in rows] == [0, 2, 4, 6]

    def test_open_high(self, tree: ObliviousBPlusTree) -> None:
        rows = tree.range_scan(94, None)
        assert [row[0] for row in rows] == [94, 96, 98]

    def test_empty_range(self, tree: ObliviousBPlusTree) -> None:
        assert tree.range_scan(200, 300) == []

    def test_full_range(self, tree: ObliviousBPlusTree) -> None:
        assert len(tree.range_scan(None, None)) == 50


class TestDelete:
    def test_delete_existing(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        for key in range(50):
            tree.insert((key, "x"))
        assert tree.delete(25) == 1
        assert tree.search(25) == []
        assert tree.count == 49

    def test_delete_missing(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        tree.insert((1, "x"))
        assert tree.delete(2) == 0
        assert tree.count == 1

    def test_delete_everything(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        keys = list(range(80))
        rng = random.Random(11)
        rng.shuffle(keys)
        for key in keys:
            tree.insert((key, "x"))
        rng.shuffle(keys)
        for key in keys:
            assert tree.delete(key) == 1
        assert tree.count == 0
        assert tree.height == 0
        assert tree.search(5) == []

    def test_interleaved_insert_delete(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        rng = random.Random(13)
        mirror: dict[int, str] = {}
        for step in range(400):
            key = rng.randrange(60)
            if key in mirror:
                assert tree.delete(key) == 1
                del mirror[key]
            else:
                tree.insert((key, f"v{step}"))
                mirror[key] = f"v{step}"
        assert sorted(row[0] for row in tree.items()) == sorted(mirror)

    def test_tree_shrinks_after_mass_delete(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        for key in range(100):
            tree.insert((key, "x"))
        tall = tree.height
        for key in range(99):
            tree.delete(key)
        assert tree.height < tall


class TestUpdate:
    def test_update_value(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        tree.insert((5, "old"))
        assert tree.update(5, (5, "new")) == 1
        assert tree.search(5) == [(5, "new")]

    def test_update_missing(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        tree.insert((5, "x"))
        assert tree.update(6, (6, "y")) == 0

    def test_update_key_change_rejected(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        tree.insert((5, "x"))
        with pytest.raises(StorageError):
            tree.update(5, (6, "x"))


class TestObliviousnessPadding:
    def test_insert_access_count_fixed_at_height(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        """All inserts at a given tree height cost identically — the
        padding modification of Section 3.2."""
        tree = make_tree(fast_enclave, kv_schema, capacity=500)
        for key in range(100):
            tree.insert((key, "x"))
        height = tree.height
        counts = set()
        for key in (1000, 2000, 3000, 4000, 5000):
            before = fast_enclave.cost.oram_accesses
            tree.insert((key, "y"))
            if tree.height == height:
                counts.add(fast_enclave.cost.oram_accesses - before)
        assert len(counts) == 1

    def test_delete_access_count_fixed_at_height(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        tree = make_tree(fast_enclave, kv_schema, capacity=500)
        for key in range(200):
            tree.insert((key, "x"))
        height = tree.height
        counts = set()
        for key in (5, 90, 170, 9999):  # hits and a miss
            before = fast_enclave.cost.oram_accesses
            tree.delete(key)
            if tree.height == height:
                counts.add(fast_enclave.cost.oram_accesses - before)
        assert len(counts) == 1

    def test_search_access_count_fixed(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        """Lookups need no padding: every root→leaf descent plus one record
        access costs the same, hit or (single-result) miss."""
        tree = make_tree(fast_enclave, kv_schema, capacity=500)
        for key in range(0, 300, 2):
            tree.insert((key, "x"))
        counts = set()
        for key in (0, 100, 298, 1, 301):  # hits and misses
            before = fast_enclave.cost.oram_accesses
            tree.search(key)
            counts.add(fast_enclave.cost.oram_accesses - before)
        assert len(counts) == 1


class TestLinearScan:
    def test_scan_matches_items(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        tree = make_tree(fast_enclave, kv_schema)
        keys = list(range(70))
        random.Random(17).shuffle(keys)
        for key in keys:
            tree.insert((key, f"v{key}"))
        tree.delete(10)
        tree.delete(20)
        scanned = sorted(row[0] for row in tree.linear_scan())
        assert scanned == sorted(set(range(70)) - {10, 20})

    def test_scan_access_pattern_is_sequential(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        """The fallback scan reads raw buckets in order: a fixed pattern."""
        tree = make_tree(fast_enclave, kv_schema, capacity=64)
        for key in range(30):
            tree.insert((key, "x"))
        fast_enclave.trace.clear()
        list(tree.linear_scan())
        events = fast_enclave.trace.events
        assert all(event.op == "R" for event in events)
        assert [event.index for event in events] == sorted(
            event.index for event in events
        )

"""Unit tests for the flat storage method."""

from __future__ import annotations

import pytest

from repro.enclave import CapacityError, Enclave, StorageError
from repro.storage import FlatStorage, Schema


def make(enclave: Enclave, schema: Schema, capacity: int = 16) -> FlatStorage:
    return FlatStorage(enclave, schema, capacity)


class TestBasics:
    def test_starts_empty(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema)
        assert table.used_rows == 0
        assert table.rows() == []
        assert all(row is None for _, row in table.scan())

    def test_insert_and_rows(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema)
        table.insert((1, "a"))
        table.insert((2, "b"))
        assert sorted(table.rows()) == [(1, "a"), (2, "b")]
        assert table.used_rows == 2

    def test_insert_fills_capacity(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema, capacity=4)
        for i in range(4):
            table.insert((i, "x"))
        with pytest.raises(CapacityError):
            table.insert((9, "x"))

    def test_fast_insert(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema)
        table.fast_insert((1, "a"))
        table.fast_insert((2, "b"))
        assert table.read_row(0) == (1, "a")
        assert table.read_row(1) == (2, "b")

    def test_fast_insert_constant_cost(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        """The paper's constant-time insert: one write, no scan."""
        table = make(fast_enclave, kv_schema, capacity=64)
        before = fast_enclave.cost.block_ios
        table.fast_insert((1, "a"))
        assert fast_enclave.cost.block_ios - before == 1

    def test_oblivious_insert_scans_whole_table(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        table = make(fast_enclave, kv_schema, capacity=10)
        before = fast_enclave.cost.block_ios
        table.insert((1, "a"))
        assert fast_enclave.cost.block_ios - before == 20  # R+W per block

    def test_insert_many_is_one_pass(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        """Bulk insert pays one uniform pass total, not one per row."""
        table = make(fast_enclave, kv_schema, capacity=10)
        before = fast_enclave.cost.block_ios
        table.insert_many([(i, "x") for i in range(5)])
        assert fast_enclave.cost.block_ios - before == 20  # one R+W pass
        assert sorted(table.rows()) == [(i, "x") for i in range(5)]
        assert table.used_rows == 5

    def test_insert_many_respects_capacity_and_reuses_holes(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        table = make(fast_enclave, kv_schema, capacity=4)
        table.insert((0, "keep"))
        table.insert((1, "hole"))
        table.delete(lambda row: row[0] == 1)
        table.insert_many([(7, "a"), (8, "b"), (9, "c")])
        assert sorted(table.rows()) == [(0, "keep"), (7, "a"), (8, "b"), (9, "c")]
        with pytest.raises(CapacityError):
            table.insert_many([(10, "x")])

    def test_fast_insert_many_is_one_range_write(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        table = make(fast_enclave, kv_schema, capacity=16)
        table.fast_insert((0, "first"))
        before = fast_enclave.cost.block_ios
        table.fast_insert_many([(i, "x") for i in range(1, 6)])
        assert fast_enclave.cost.block_ios - before == 5  # W only, no reads
        assert table.read_row(0) == (0, "first")
        assert [table.read_row(i) for i in range(1, 6)] == [
            (i, "x") for i in range(1, 6)
        ]
        with pytest.raises(CapacityError):
            table.fast_insert_many([(9, "x")] * 11)

    def test_insert_reuses_deleted_slot(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema, capacity=3)
        for i in range(3):
            table.insert((i, "x"))
        table.delete(lambda row: row[0] == 1)
        table.insert((9, "y"))
        assert sorted(table.rows()) == [(0, "x"), (2, "x"), (9, "y")]


class TestUpdateDelete:
    def test_update_matching(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema)
        for i in range(5):
            table.fast_insert((i, "old"))
        updated = table.update(
            lambda row: row[0] % 2 == 0, lambda row: (row[0], "new")
        )
        assert updated == 3
        assert sorted(r[1] for r in table.rows()) == ["new", "new", "new", "old", "old"]

    def test_delete_matching(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema)
        for i in range(6):
            table.fast_insert((i, "x"))
        deleted = table.delete(lambda row: row[0] < 2)
        assert deleted == 2
        assert table.used_rows == 4

    def test_update_cost_independent_of_matches(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        """Zero matches and all matches must cost identically."""
        table = make(fast_enclave, kv_schema, capacity=8)
        for i in range(8):
            table.fast_insert((i, "x"))
        before = fast_enclave.cost.block_ios
        table.update(lambda row: False, lambda row: row)
        none_cost = fast_enclave.cost.block_ios - before
        before = fast_enclave.cost.block_ios
        table.update(lambda row: True, lambda row: (row[0], "y"))
        all_cost = fast_enclave.cost.block_ios - before
        assert none_cost == all_cost


class TestBlockPrimitives:
    def test_write_and_read_row(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema)
        table.write_row(3, (7, "seven"))
        assert table.read_row(3) == (7, "seven")
        table.write_row(3, None)
        assert table.read_row(3) is None

    def test_rewrite_row_returns_content(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema)
        table.write_row(0, (1, "a"))
        assert table.rewrite_row(0) == (1, "a")
        assert table.read_row(0) == (1, "a")

    def test_rewrite_refreshes_ciphertext(self, kv_schema: Schema) -> None:
        enclave = Enclave(keep_trace_events=True)  # real cipher
        table = FlatStorage(enclave, kv_schema, 2)
        table.write_row(0, (1, "a"))
        before = enclave.untrusted.peek(table.region_name, 0)
        table.rewrite_row(0)
        after = enclave.untrusted.peek(table.region_name, 0)
        assert before is not None and after is not None
        assert before.ciphertext != after.ciphertext or before.nonce != after.nonce


class TestLifecycle:
    def test_copy_to_larger(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema, capacity=4)
        for i in range(4):
            table.fast_insert((i, "x"))
        bigger = table.copy_to(capacity=8)
        assert bigger.capacity == 8
        assert sorted(bigger.rows()) == sorted(table.rows())
        assert bigger.used_rows == 4

    def test_copy_to_smaller_rejected(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema, capacity=4)
        with pytest.raises(StorageError):
            table.copy_to(capacity=2)

    def test_free_releases_region(self, fast_enclave: Enclave, kv_schema: Schema) -> None:
        table = make(fast_enclave, kv_schema)
        region = table.region_name
        table.free()
        assert not fast_enclave.untrusted.has_region(region)
        table.free()  # idempotent

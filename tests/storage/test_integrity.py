"""Failure-injection tests: the malicious OS attacks of Section 3.

The adversary controls untrusted memory.  Each test stages one of the
tampering strategies the paper's integrity machinery must catch:
modification, shuffling/transplanting, and rollback to stale state.
"""

from __future__ import annotations

import pytest

from repro.enclave import (
    Enclave,
    IntegrityError,
    ObliDBError,
    RollbackError,
    StorageError,
)
from repro.storage import FlatStorage, Schema
from repro.enclave.integrity import RevisionLedger


@pytest.fixture
def table(enclave: Enclave, kv_schema: Schema) -> FlatStorage:
    table = FlatStorage(enclave, kv_schema, 8)
    for i in range(4):
        table.fast_insert((i, f"row{i}"))
    return table


class TestTamperDetection:
    def test_modified_block_detected(self, enclave: Enclave, table: FlatStorage) -> None:
        sealed = enclave.untrusted.peek(table.region_name, 0)
        assert sealed is not None
        from repro.enclave.crypto import SealedBlock

        corrupted = SealedBlock(
            nonce=sealed.nonce,
            ciphertext=bytes([sealed.ciphertext[0] ^ 0xFF]) + sealed.ciphertext[1:],
            mac=sealed.mac,
        )
        enclave.untrusted.tamper(table.region_name, 0, corrupted)
        with pytest.raises(IntegrityError):
            table.read_row(0)

    def test_shuffled_blocks_detected(self, enclave: Enclave, table: FlatStorage) -> None:
        """Swapping two validly-MACed blocks must fail: identity binding."""
        a = enclave.untrusted.peek(table.region_name, 0)
        b = enclave.untrusted.peek(table.region_name, 1)
        enclave.untrusted.tamper(table.region_name, 0, b)
        enclave.untrusted.tamper(table.region_name, 1, a)
        with pytest.raises(IntegrityError):
            table.read_row(0)

    def test_cross_table_transplant_detected(
        self, enclave: Enclave, table: FlatStorage, kv_schema: Schema
    ) -> None:
        """A block from another table must not verify, even at the same
        index: the region name is part of the authenticated identity."""
        other = FlatStorage(enclave, kv_schema, 8)
        other.fast_insert((99, "evil"))
        foreign = enclave.untrusted.peek(other.region_name, 0)
        enclave.untrusted.tamper(table.region_name, 0, foreign)
        with pytest.raises(IntegrityError):
            table.read_row(0)

    def test_rollback_detected(self, enclave: Enclave, table: FlatStorage) -> None:
        """Serving a stale (previous-revision) copy must fail."""
        stale = enclave.untrusted.peek(table.region_name, 0)
        table.write_row(0, (0, "updated"))
        enclave.untrusted.tamper(table.region_name, 0, stale)
        with pytest.raises(IntegrityError):
            table.read_row(0)

    def test_honest_reads_still_pass(self, table: FlatStorage) -> None:
        assert table.read_row(0) == (0, "row0")
        table.write_row(0, (0, "v2"))
        assert table.read_row(0) == (0, "v2")


class TestRevisionLedger:
    def test_revisions_increment(self) -> None:
        ledger = RevisionLedger()
        assert ledger.next_revision("t", 0) == 1
        ledger.commit("t", 0, 1)
        assert ledger.next_revision("t", 0) == 2
        assert ledger.current("t", 0) == 1

    def test_verify_accepts_current(self) -> None:
        ledger = RevisionLedger()
        ledger.commit("t", 0, 3)
        ledger.verify("t", 0, 3)

    def test_verify_rejects_stale(self) -> None:
        ledger = RevisionLedger()
        ledger.commit("t", 0, 3)
        with pytest.raises(RollbackError):
            ledger.verify("t", 0, 2)

    def test_verify_rejects_future(self) -> None:
        ledger = RevisionLedger()
        ledger.commit("t", 0, 3)
        with pytest.raises(RollbackError):
            ledger.verify("t", 0, 4)

    def test_forget_region(self) -> None:
        ledger = RevisionLedger()
        ledger.commit("t", 0, 5)
        ledger.forget_region("t")
        assert ledger.current("t", 0) == 0

    def test_associated_data_binds_everything(self) -> None:
        ledger = RevisionLedger()
        base = ledger.associated_data("t", 0, 1)
        assert ledger.associated_data("u", 0, 1) != base  # region
        assert ledger.associated_data("t", 1, 1) != base  # index
        assert ledger.associated_data("t", 0, 2) != base  # revision


class TestLedgerGatherScatter:
    """The ``*_at`` batch APIs must agree with the scalar calls they fuse."""

    INDICES = [0, 2, 5, 12, 3]  # heap-ordered path: non-contiguous, unordered

    def test_open_at_matches_scalar_aads(self) -> None:
        ledger = RevisionLedger()
        ledger.commit("t", 2, 4)
        ledger.commit("t", 12, 1)
        assert ledger.open_at("t", self.INDICES) == [
            ledger.associated_data("t", i, ledger.current("t", i))
            for i in self.INDICES
        ]

    def test_stage_at_matches_scalar_and_commits_nothing(self) -> None:
        ledger = RevisionLedger()
        ledger.commit("t", 5, 7)
        revisions, aads = ledger.stage_at("t", self.INDICES)
        assert revisions == [ledger.next_revision("t", i) for i in self.INDICES]
        assert aads == [
            ledger.associated_data("t", i, r)
            for i, r in zip(self.INDICES, revisions)
        ]
        # Nothing committed yet: staging again yields the same revisions.
        assert ledger.stage_at("t", self.INDICES)[0] == revisions

    def test_commit_at_round_trip(self) -> None:
        ledger = RevisionLedger()
        revisions, _ = ledger.stage_at("t", self.INDICES)
        ledger.commit_at("t", self.INDICES, revisions)
        for index, revision in zip(self.INDICES, revisions):
            assert ledger.current("t", index) == revision

    def test_at_and_range_agree_on_contiguous_runs(self) -> None:
        ledger = RevisionLedger()
        ledger.commit("t", 1, 9)
        assert ledger.open_at("t", range(4)) == ledger.open_range("t", 0, 4)
        assert ledger.stage_at("t", range(4)) == tuple(
            ledger.stage_range("t", 0, 4)
        )


class TestStepOperations:
    """Cross-region (region, index) step batches used by the interleaved
    exchange must agree with the scalar and single-region batch APIs."""

    STEPS = [("a", 0), ("b", 3), ("a", 5), ("b", 1)]

    def test_open_steps_matches_scalar(self) -> None:
        ledger = RevisionLedger()
        ledger.commit("a", 5, 4)
        ledger.commit("b", 3, 2)
        assert ledger.open_steps(self.STEPS) == [
            ledger.associated_data(region, index, ledger.current(region, index))
            for region, index in self.STEPS
        ]

    def test_stage_and_commit_steps_round_trip(self) -> None:
        ledger = RevisionLedger()
        ledger.commit("b", 1, 6)
        revisions, aads = ledger.stage_steps(self.STEPS)
        assert revisions == [
            ledger.next_revision(region, index) for region, index in self.STEPS
        ]
        assert aads == [
            ledger.associated_data(region, index, revision)
            for (region, index), revision in zip(self.STEPS, revisions)
        ]
        # Nothing committed by staging.
        assert ledger.stage_steps(self.STEPS)[0] == revisions
        ledger.commit_steps(self.STEPS, revisions)
        for (region, index), revision in zip(self.STEPS, revisions):
            assert ledger.current(region, index) == revision

    def test_stage_steps_rejects_duplicates(self) -> None:
        # Typed (StorageError, catchable as ObliDBError), not a bare
        # ValueError: callers distinguish library invariants from Python
        # argument errors.
        ledger = RevisionLedger()
        with pytest.raises(StorageError):
            ledger.stage_steps([("a", 0), ("b", 0), ("a", 0)])
        with pytest.raises(ObliDBError):
            ledger.stage_at("a", [0, 0])


class TestCompatibilityShim:
    """``repro.storage.integrity`` is a deprecated re-export of
    ``repro.enclave.integrity``; the shim must keep working until every
    importer has moved."""

    def test_reexport_is_the_enclave_class(self) -> None:
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.enclave.integrity as canonical
            import repro.storage.integrity as shim

        assert shim.RevisionLedger is canonical.RevisionLedger
        assert shim.__all__ == ["RevisionLedger"]
        assert "DEPRECATED" in (shim.__doc__ or "")

    def test_deprecation_warning_emitted_exactly_once(self) -> None:
        """The shim warns when its module code executes — once per process,
        since Python caches the module; repeated imports stay silent."""
        import importlib
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.storage.integrity as shim

        # Re-executing the module (what the first import of a process does)
        # emits exactly one DeprecationWarning naming the replacement.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(shim)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.enclave.integrity" in str(deprecations[0].message)

        # A subsequent import hits the module cache: no re-execution, no
        # second warning.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.storage.integrity  # noqa: F401,F811

        assert not caught

    def test_library_modules_do_not_import_the_shim(self) -> None:
        """In-tree code must import the canonical module: importing the
        public packages fresh emits no deprecation chatter."""
        import subprocess
        import sys

        result = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro, repro.storage, repro.operators, repro.oblivious",
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

"""Unit tests for row framing (in-use flags, dummies)."""

from __future__ import annotations

from repro.storage import (
    Schema,
    frame_dummy,
    frame_row,
    framed_size,
    is_dummy,
    unframe_row,
)


class TestFraming:
    def test_framed_size(self, kv_schema: Schema) -> None:
        assert framed_size(kv_schema) == kv_schema.row_size + 1

    def test_real_row_roundtrip(self, kv_schema: Schema) -> None:
        framed = frame_row(kv_schema, (1, "x"))
        assert len(framed) == framed_size(kv_schema)
        assert unframe_row(kv_schema, framed) == (1, "x")
        assert not is_dummy(framed)

    def test_dummy_roundtrip(self, kv_schema: Schema) -> None:
        framed = frame_dummy(kv_schema)
        assert len(framed) == framed_size(kv_schema)
        assert unframe_row(kv_schema, framed) is None
        assert is_dummy(framed)

    def test_dummy_and_real_same_length(self, kv_schema: Schema) -> None:
        """Equal plaintext lengths are what make dummy writes unobservable."""
        assert len(frame_dummy(kv_schema)) == len(frame_row(kv_schema, (0, "")))

    def test_empty_bytes_is_dummy(self, kv_schema: Schema) -> None:
        assert is_dummy(b"")
        assert unframe_row(kv_schema, b"") is None

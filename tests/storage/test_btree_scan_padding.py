"""Regression tests for the leaf-boundary scan-padding fix (DESIGN.md §8).

A match at the last slot of a leaf used to cost one extra ORAM access
(loading the next leaf to check continuation), leaking the key's alignment
within its leaf.  These tests pin the fixed behaviour: scan cost is a pure
function of (tree height, result count).
"""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.storage import ObliviousBPlusTree, Schema, int_column, str_column

SCHEMA = Schema([int_column("key"), str_column("value", 8)])


@pytest.fixture
def tree(fast_enclave: Enclave) -> ObliviousBPlusTree:
    tree = ObliviousBPlusTree(
        fast_enclave, SCHEMA, "key", 400, order=8, rng=random.Random(1)
    )
    # Sequential inserts give leaves packed at the split boundary, so some
    # keys are guaranteed to sit at leaf edges.
    for key in range(200):
        tree.insert((key, f"v{key}"))
    return tree


class TestSearchPadding:
    def test_every_key_costs_the_same(
        self, tree: ObliviousBPlusTree, fast_enclave: Enclave
    ) -> None:
        """Whatever a key's position within its leaf, a 1-result search has
        one fixed access count."""
        counts = set()
        for key in range(0, 200, 7):
            before = fast_enclave.cost.oram_accesses
            assert tree.search(key) == [(key, f"v{key}")]
            counts.add(fast_enclave.cost.oram_accesses - before)
        assert len(counts) == 1, counts

    def test_miss_costs_like_hit(
        self, tree: ObliviousBPlusTree, fast_enclave: Enclave
    ) -> None:
        before = fast_enclave.cost.oram_accesses
        tree.search(77)
        hit = fast_enclave.cost.oram_accesses - before
        before = fast_enclave.cost.oram_accesses
        tree.search(100_000)
        miss = fast_enclave.cost.oram_accesses - before
        # A miss pads to the 0-result target, a hit to the 1-result target:
        # they differ by exactly the (public) result-count difference.
        assert abs(hit - miss) <= 1

    def test_range_cost_depends_only_on_result_count(
        self, tree: ObliviousBPlusTree, fast_enclave: Enclave
    ) -> None:
        """Equal-width ranges anywhere in the key space cost the same."""
        counts = set()
        for low in (0, 37, 101, 150):
            before = fast_enclave.cost.oram_accesses
            rows = tree.range_scan(low, low + 9)
            assert len(rows) == 10
            counts.add(fast_enclave.cost.oram_accesses - before)
        assert len(counts) == 1, counts

    def test_larger_ranges_cost_more(
        self, tree: ObliviousBPlusTree, fast_enclave: Enclave
    ) -> None:
        """Result size is declared leakage: it SHOULD show in the count."""
        before = fast_enclave.cost.oram_accesses
        tree.range_scan(0, 4)
        small = fast_enclave.cost.oram_accesses - before
        before = fast_enclave.cost.oram_accesses
        tree.range_scan(0, 49)
        large = fast_enclave.cost.oram_accesses - before
        assert large > small

    def test_duplicates_across_leaf_boundary(self, fast_enclave: Enclave) -> None:
        """Duplicate keys spanning multiple leaves: the search must find
        ALL of them, including those left of a split separator equal to
        the key (regression: right-biased descent used to miss them)."""
        tree = ObliviousBPlusTree(
            fast_enclave, SCHEMA, "key", 200, order=8, rng=random.Random(2)
        )
        for i in range(20):
            tree.insert((5, f"dup{i}"))
        for key in (1, 2, 3, 9, 10, 11):
            tree.insert((key, "other"))
        results = tree.search(5)
        assert len(results) == 20
        assert all(row[0] == 5 for row in results)

    def test_delete_all_duplicates_across_leaves(self, fast_enclave: Enclave) -> None:
        """Every duplicate is reachable by delete, even once separators go
        stale mid-run (regression for the forward-walk delete path)."""
        tree = ObliviousBPlusTree(
            fast_enclave, SCHEMA, "key", 200, order=8, rng=random.Random(3)
        )
        for i in range(20):
            tree.insert((5, f"dup{i}"))
        tree.insert((1, "low"))
        tree.insert((9, "high"))
        removed = 0
        while tree.delete(5):
            removed += 1
        assert removed == 20
        assert tree.search(5) == []
        assert tree.count == 2
        assert [row[0] for row in tree.items()] == [1, 9]

    def test_range_scan_over_duplicates(self, fast_enclave: Enclave) -> None:
        tree = ObliviousBPlusTree(
            fast_enclave, SCHEMA, "key", 200, order=8, rng=random.Random(4)
        )
        for i in range(15):
            tree.insert((7, f"d{i}"))
        tree.insert((6, "before"))
        tree.insert((8, "after"))
        rows = tree.range_scan(7, 7)
        assert len(rows) == 15
        rows = tree.range_scan(6, 8)
        assert len(rows) == 17

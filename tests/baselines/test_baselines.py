"""Unit tests for the comparison systems (Opaque, Spark-like, HIRB, MySQL-like,
naive ORAM)."""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    HIRBMap,
    NaiveORAMTable,
    OpaqueSystem,
    PlainIndex,
    PlainSystem,
)
from repro.enclave import Enclave
from repro.operators import AggregateFunction, AggregateSpec, Comparison
from repro.storage import Schema, int_column

SCHEMA = Schema([int_column("k"), int_column("v")])


class TestOpaqueSystem:
    @pytest.fixture
    def opaque(self) -> OpaqueSystem:
        system = OpaqueSystem(oblivious_memory_bytes=1 << 16, cipher="null")
        system.create_table("t", SCHEMA, 32)
        system.load_rows("t", [(i, i * 10) for i in range(20)])
        return system

    def test_filter(self, opaque: OpaqueSystem) -> None:
        out = opaque.filter("t", Comparison("k", "<", 5))
        assert sorted(out.rows()) == [(i, i * 10) for i in range(5)]

    def test_filter_output_is_compacted_prefix(self, opaque: OpaqueSystem) -> None:
        out = opaque.filter("t", Comparison("k", "<", 5))
        prefix = [out.read_row(i) for i in range(5)]
        assert all(row is not None for row in prefix)
        assert all(out.read_row(i) is None for i in range(5, out.capacity))

    def test_filter_scans_whole_table_regardless_of_selectivity(
        self, opaque: OpaqueSystem
    ) -> None:
        """The defining Opaque property: point-ish queries cost full sorts."""
        costs = []
        for predicate in (Comparison("k", "=", 3), Comparison("k", ">=", 0)):
            before = opaque.enclave.cost.block_ios
            opaque.filter("t", predicate)
            costs.append(opaque.enclave.cost.block_ios - before)
        assert costs[0] == costs[1]

    def test_aggregate(self, opaque: OpaqueSystem) -> None:
        result = opaque.aggregate("t", [AggregateSpec(AggregateFunction.COUNT)])
        assert result == (20,)

    def test_group_by(self, opaque: OpaqueSystem) -> None:
        system = OpaqueSystem(oblivious_memory_bytes=1 << 16, cipher="null")
        system.create_table("g", SCHEMA, 16)
        system.load_rows("g", [(i % 3, i) for i in range(12)])
        out = system.group_by(
            "g", "k", [AggregateSpec(AggregateFunction.SUM, "v")]
        )
        expected = sorted(
            (g, float(sum(i for i in range(12) if i % 3 == g))) for g in range(3)
        )
        assert sorted(out.rows()) == expected

    def test_join(self) -> None:
        system = OpaqueSystem(oblivious_memory_bytes=1 << 16, cipher="null")
        left_schema = Schema([int_column("pk"), int_column("a")])
        right_schema = Schema([int_column("fk"), int_column("b")])
        system.create_table("l", left_schema, 8)
        system.create_table("r", right_schema, 8)
        system.load_rows("l", [(i, i) for i in range(4)])
        system.load_rows("r", [(i % 4, 100 + i) for i in range(8)])
        out = system.join("l", "r", "pk", "fk")
        assert len(out.rows()) == 8


class TestPlainSystem:
    @pytest.fixture
    def plain(self) -> PlainSystem:
        system = PlainSystem()
        system.create_table("t", SCHEMA)
        system.load_rows("t", [(i, i * 10) for i in range(20)])
        return system

    def test_filter(self, plain: PlainSystem) -> None:
        assert plain.filter("t", Comparison("k", "<", 3)) == [
            (0, 0), (1, 10), (2, 20),
        ]

    def test_aggregate(self, plain: PlainSystem) -> None:
        result = plain.aggregate(
            "t",
            [AggregateSpec(AggregateFunction.SUM, "v")],
            predicate=Comparison("k", "<", 3),
        )
        assert result == (30,)

    def test_group_by(self, plain: PlainSystem) -> None:
        system = PlainSystem()
        system.create_table("g", SCHEMA)
        system.load_rows("g", [(i % 2, i) for i in range(10)])
        rows = system.group_by("g", "k", [AggregateSpec(AggregateFunction.COUNT)])
        assert rows == [(0, 5.0), (1, 5.0)]

    def test_join(self, plain: PlainSystem) -> None:
        system = PlainSystem()
        system.create_table("l", Schema([int_column("pk"), int_column("a")]))
        system.create_table("r", Schema([int_column("fk"), int_column("b")]))
        system.load_rows("l", [(1, 10), (2, 20)])
        system.load_rows("r", [(1, 100), (2, 200), (3, 300)])
        assert system.join("l", "r", "pk", "fk") == [
            (1, 10, 1, 100), (2, 20, 2, 200),
        ]

    def test_cheaper_than_oblivious(self, plain: PlainSystem) -> None:
        plain.filter("t", Comparison("k", "<", 3))
        assert plain.cost.untrusted_writes == 0
        assert plain.cost.untrusted_reads == 20


class TestHIRBMap:
    def test_get_insert_delete(self) -> None:
        hirb = HIRBMap(capacity=64, rng=random.Random(1), cipher="null")
        assert hirb.get(5) is None
        hirb.insert(5, "five")
        assert hirb.get(5) == "five"
        hirb.insert(5, "five-v2")
        assert hirb.get(5) == "five-v2"
        assert hirb.count == 1
        assert hirb.delete(5)
        assert not hirb.delete(5)
        assert hirb.get(5) is None

    def test_fixed_cost_per_height(self) -> None:
        hirb = HIRBMap(capacity=256, rng=random.Random(2), cipher="null")
        for key in range(64):
            hirb.insert(key, f"v{key}")
        height = hirb.height
        costs = set()
        for key in (1, 40, 999):  # hits and a miss
            before = hirb.client.cost.oram_accesses
            hirb.get(key)
            if hirb.height == height:
                costs.add(hirb.client.cost.oram_accesses - before)
        assert len(costs) == 1

    def test_slower_than_oblidb_index(self, kv_schema: Schema) -> None:
        """The Figure 9 shape: ObliDB's enclave index beats HIRB by a
        multiple on point lookups."""
        from repro.storage import IndexedStorage

        hirb = HIRBMap(capacity=256, rng=random.Random(3), cipher="null")
        enclave = Enclave(oblivious_memory_bytes=1 << 22, cipher="null")
        oblidb = IndexedStorage(enclave, kv_schema, "key", 256, rng=random.Random(3))
        for key in range(128):
            hirb.insert(key, f"v{key}")
            oblidb.insert((key, f"v{key}"))
        before = hirb.client.cost.oram_accesses
        hirb.get(64)
        hirb_cost = hirb.client.cost.oram_accesses - before
        before = enclave.cost.oram_accesses
        oblidb.point_lookup(64)
        oblidb_cost = enclave.cost.oram_accesses - before
        assert hirb_cost >= 3 * oblidb_cost


class TestPlainIndex:
    def test_crud(self) -> None:
        index = PlainIndex()
        index.insert(3, "c")
        index.insert(1, "a")
        index.insert(2, "b")
        assert index.get(2) == "b"
        assert len(index) == 3
        assert index.delete(2)
        assert not index.delete(2)
        assert index.get(2) is None

    def test_range(self) -> None:
        index = PlainIndex()
        for key in range(10):
            index.insert(key, f"v{key}")
        assert index.range(3, 5) == [(3, "v3"), (4, "v4"), (5, "v5")]

    def test_overwrite(self) -> None:
        index = PlainIndex()
        index.insert(1, "a")
        index.insert(1, "b")
        assert index.get(1) == "b"
        assert len(index) == 1


class TestNaiveORAMTable:
    def test_insert_and_select(self, fast_enclave: Enclave) -> None:
        table = NaiveORAMTable(fast_enclave, SCHEMA, 32, rng=random.Random(4))
        for i in range(20):
            table.insert((i, i * 2))
        rows = table.select(Comparison("k", "<", 4))
        assert sorted(rows) == [(0, 0), (1, 2), (2, 4), (3, 6)]

    def test_oram_cost_per_row(self, fast_enclave: Enclave) -> None:
        table = NaiveORAMTable(fast_enclave, SCHEMA, 16, rng=random.Random(4))
        for i in range(16):
            table.insert((i, i))
        before = fast_enclave.cost.oram_accesses
        table.select(Comparison("k", "=", 3))
        delta = fast_enclave.cost.oram_accesses - before
        assert delta >= 2 * 16  # input read + output op per row

    def test_slower_than_oblidb_select(self, fast_enclave: Enclave) -> None:
        """The intro's 'order of magnitude over naive ORAM' claim, in
        block-IO terms."""
        from repro.operators import small_select
        from repro.storage import FlatStorage

        naive = NaiveORAMTable(fast_enclave, SCHEMA, 64, rng=random.Random(4))
        flat = FlatStorage(fast_enclave, SCHEMA, 64)
        for i in range(64):
            naive.insert((i, i))
            flat.fast_insert((i, i))
        predicate = Comparison("k", "<", 4)
        before = fast_enclave.cost.block_ios
        naive.select(predicate)
        naive_cost = fast_enclave.cost.block_ios - before
        before = fast_enclave.cost.block_ios
        small_select(flat, predicate, 4, buffer_rows=8)
        oblidb_cost = fast_enclave.cost.block_ios - before
        assert naive_cost > 5 * oblidb_cost

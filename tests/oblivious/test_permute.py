"""Unit tests for enclave-seeded permutation generation."""

from __future__ import annotations

import random

import pytest

from repro.oblivious import (
    PermutationSource,
    generate_permutation,
    invert_permutation,
)


class TestGeneratePermutation:
    def test_is_a_permutation(self) -> None:
        perm = generate_permutation(40, random.Random(1))
        assert sorted(perm) == list(range(40))

    def test_deterministic_given_seed(self) -> None:
        assert generate_permutation(16, random.Random(7)) == generate_permutation(
            16, random.Random(7)
        )

    def test_matches_random_shuffle_draws(self) -> None:
        """Lockstep contract: exactly random.Random.shuffle's draws, so a
        batched and a per-row implementation sharing one rng stay aligned."""
        expected = list(range(12))
        random.Random(3).shuffle(expected)
        assert generate_permutation(12, random.Random(3)) == expected

    @pytest.mark.parametrize("n", [0, 1])
    def test_degenerate_sizes(self, n: int) -> None:
        assert generate_permutation(n, random.Random(1)) == list(range(n))

    def test_negative_rejected(self) -> None:
        with pytest.raises(ValueError):
            generate_permutation(-1, random.Random(1))


class TestInvertPermutation:
    def test_inverse_round_trip(self) -> None:
        perm = generate_permutation(25, random.Random(9))
        inverse = invert_permutation(perm)
        assert [inverse[perm[i]] for i in range(25)] == list(range(25))
        assert invert_permutation(inverse) == perm

    def test_invalid_entry_rejected(self) -> None:
        with pytest.raises(ValueError):
            invert_permutation([0, 5])


class TestPermutationSource:
    def test_deterministic_per_tweak(self) -> None:
        source = PermutationSource(b"enclave-secret")
        assert source.permutation(20, b"pass1") == source.permutation(20, b"pass1")

    def test_tweaks_and_seeds_decorrelate(self) -> None:
        source = PermutationSource(b"enclave-secret")
        other = PermutationSource(b"different-secret")
        assert source.permutation(20, b"a") != source.permutation(20, b"b")
        assert source.permutation(20, b"a") != other.permutation(20, b"a")

    def test_is_a_permutation(self) -> None:
        perm = PermutationSource(b"k").permutation(33, b"t")
        assert sorted(perm) == list(range(33))

    def test_empty_seed_rejected(self) -> None:
        with pytest.raises(ValueError):
            PermutationSource(b"")

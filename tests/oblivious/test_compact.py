"""Unit tests for order-preserving oblivious compaction."""

from __future__ import annotations

import pytest

from repro.enclave import Enclave
from repro.oblivious import (
    compaction_levels,
    filter_copy,
    materialize_prefix,
    oblivious_compact,
)
from repro.storage import FlatStorage, Schema, int_column, str_column

SCHEMA = Schema([int_column("k"), str_column("v", 8)])


def scattered(enclave: Enclave, capacity: int, positions: list[int]) -> FlatStorage:
    table = FlatStorage(enclave, SCHEMA, capacity)
    for rank, position in enumerate(positions):
        table.write_row(position, (rank, f"r{rank}"))
        table._used += 1
    return table


def _enclave() -> Enclave:
    return Enclave(cipher="authenticated", keep_trace_events=False)


class TestCompactionLevels:
    @pytest.mark.parametrize(
        "n,levels", [(0, 0), (1, 0), (2, 1), (3, 2), (8, 3), (9, 4), (1024, 10)]
    )
    def test_levels(self, n: int, levels: int) -> None:
        assert compaction_levels(n) == levels


class TestObliviousCompact:
    @pytest.mark.parametrize(
        "positions",
        [
            [0, 1, 2],            # already compact
            [13, 14, 15],         # all at the tail
            [0, 5, 6, 11, 15],    # scattered
            list(range(16)),      # full table
            [],                   # empty
            [7],                  # single row mid-table
        ],
    )
    def test_keepers_slide_to_front_in_order(self, positions: list[int]) -> None:
        table = scattered(_enclave(), 16, positions)
        kept = oblivious_compact(table)
        assert kept == len(positions)
        rows = [table.read_row(i) for i in range(16)]
        assert rows[:kept] == [(rank, f"r{rank}") for rank in range(len(positions))]
        assert all(row is None for row in rows[kept:])
        assert table.used_rows == kept

    def test_predicate_discards_non_matches(self) -> None:
        table = scattered(_enclave(), 16, [1, 4, 6, 9, 12])
        kept = oblivious_compact(table, keep=lambda row: row[0] % 2 == 0)
        assert kept == 3
        assert table.rows() == [(0, "r0"), (2, "r2"), (4, "r4")]

    def test_fast_insert_resumes_after_compaction(self) -> None:
        table = scattered(_enclave(), 8, [6, 7])
        oblivious_compact(table)
        table.fast_insert((9, "new"))
        assert table.rows() == [(0, "r0"), (1, "r1"), (9, "new")]

    def test_empty_table(self) -> None:
        table = FlatStorage(_enclave(), SCHEMA, 0)
        assert oblivious_compact(table) == 0

    def test_uses_no_oblivious_memory(self) -> None:
        """Compaction keeps only per-slot bookkeeping (ledger-rate client
        state), so it works with a zero oblivious-memory budget."""
        enclave = Enclave(
            oblivious_memory_bytes=0, cipher="authenticated", keep_trace_events=False
        )
        table = scattered(enclave, 16, [3, 9, 12])
        assert oblivious_compact(table) == 3
        assert enclave.oblivious.peak_bytes == 0


class TestFilterCopyAndPrefix:
    def test_filter_copy_then_prefix_materialises_matches(self) -> None:
        enclave = _enclave()
        source = scattered(enclave, 12, [0, 2, 5, 7, 10])
        scratch = FlatStorage(enclave, SCHEMA, 12)
        flags = filter_copy(source, scratch, lambda row: row[0] >= 2)
        assert sum(flags) == 3 and len(flags) == 12
        assert oblivious_compact(scratch) == 3
        tight = materialize_prefix(scratch, 3)
        assert tight.capacity == 3
        assert tight.rows() == [(2, "r2"), (3, "r3"), (4, "r4")]
        assert tight.used_rows == 3

    def test_precomputed_flags_skip_the_marking_scan(self) -> None:
        enclave = _enclave()
        source = scattered(enclave, 12, [1, 4, 8, 11])
        scratch = FlatStorage(enclave, SCHEMA, 12)
        flags = filter_copy(source, scratch, lambda row: True)
        reads_before = enclave.cost.untrusted_reads
        kept = oblivious_compact(scratch, flags=flags)
        # Marking scan skipped: no standalone R 0..n-1 pass before level 1.
        level_reads = sum(
            2 * 12 - (1 << j) for j in range(4)
        )  # R i + R i+D per level
        assert enclave.cost.untrusted_reads - reads_before == level_reads
        assert kept == 4
        assert scratch.rows() == [(0, "r0"), (1, "r1"), (2, "r2"), (3, "r3")]

    def test_wrong_flag_count_rejected(self) -> None:
        table = scattered(_enclave(), 8, [0])
        with pytest.raises(ValueError):
            oblivious_compact(table, flags=[True] * 7)

    def test_prefix_clamps_to_capacity(self) -> None:
        enclave = _enclave()
        table = scattered(enclave, 4, [0, 1])
        tight = materialize_prefix(table, 100)
        assert tight.capacity == 4
        assert tight.rows() == [(0, "r0"), (1, "r1")]

    def test_prefix_supports_fast_insert(self) -> None:
        enclave = _enclave()
        table = scattered(enclave, 8, [5, 6])
        oblivious_compact(table)
        tight = materialize_prefix(table, 4)
        tight.fast_insert((42, "new"))
        assert tight.rows() == [(0, "r0"), (1, "r1"), (42, "new")]

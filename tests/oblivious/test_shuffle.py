"""Unit tests for the bucket oblivious shuffle."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.oblivious import oblivious_shuffle, plan_shuffle, shuffle_geometry
from repro.storage import FlatStorage, Schema, int_column, str_column

SCHEMA = Schema([int_column("k"), str_column("v", 8)])


def load(enclave: Enclave, capacity: int, rows: int) -> FlatStorage:
    table = FlatStorage(enclave, SCHEMA, capacity)
    for i in range(rows):
        table.fast_insert((i, f"r{i}"))
    return table


class TestGeometry:
    @pytest.mark.parametrize("n", [1, 2, 7, 64, 100, 1024])
    def test_cells_cover_scratch_exactly_once(self, n: int) -> None:
        geometry = shuffle_geometry(n)
        slots: list[int] = []
        for chunk in range(geometry.chunks):
            slots.extend(geometry.distribute_indices(chunk))
        assert sorted(slots) == list(range(geometry.scratch_capacity))

    @pytest.mark.parametrize("n", [1, 2, 7, 64, 100, 1024])
    def test_segments_partition_output(self, n: int) -> None:
        geometry = shuffle_geometry(n)
        positions: list[int] = []
        for bucket in range(geometry.buckets):
            start, stop = geometry.segment(bucket)
            positions.extend(range(start, stop))
        assert positions == list(range(n))

    def test_rejects_empty(self) -> None:
        with pytest.raises(ValueError):
            shuffle_geometry(0)


class TestPlanning:
    def test_plan_routes_every_index_once(self) -> None:
        geometry = shuffle_geometry(100)
        perm, cells = plan_shuffle(geometry, random.Random(3))
        assert sorted(perm) == list(range(100))
        routed = sorted(
            index
            for chunk_cells in cells
            for cell in chunk_cells
            for index in cell
        )
        assert routed == list(range(100))
        # Every routed index sits in the cell of its chunk and target bucket.
        for chunk, chunk_cells in enumerate(cells):
            for bucket, cell in enumerate(chunk_cells):
                for index in cell:
                    assert index // geometry.chunk_rows == chunk
                    assert perm[index] // geometry.segment_rows == bucket

    def test_planning_is_unobservable(self) -> None:
        enclave = Enclave(cipher="null", keep_trace_events=True)
        before = len(enclave.trace)
        plan_shuffle(shuffle_geometry(64), random.Random(1))
        assert len(enclave.trace) == before


class TestShuffle:
    def test_contents_preserved_and_permuted(self) -> None:
        enclave = Enclave(cipher="authenticated", keep_trace_events=False)
        table = load(enclave, 40, 31)
        output = oblivious_shuffle(table, random.Random(11))
        assert output.capacity == 40
        assert output.used_rows == 31
        assert sorted(output.rows()) == sorted(table.rows())
        # Astronomically unlikely to be the identity permutation.
        assert output.rows() != table.rows()

    def test_applies_the_planned_permutation(self) -> None:
        """Row at slot i lands at slot perm[i] — including dummy slots."""
        enclave = Enclave(cipher="authenticated", keep_trace_events=False)
        table = load(enclave, 24, 17)
        geometry = shuffle_geometry(24)
        perm, _ = plan_shuffle(geometry, random.Random(5))
        output = oblivious_shuffle(table, random.Random(5))
        for index in range(24):
            assert output.read_row(perm[index]) == table.read_row(index)

    def test_single_row_table(self) -> None:
        enclave = Enclave(cipher="authenticated", keep_trace_events=False)
        table = load(enclave, 1, 1)
        output = oblivious_shuffle(table, random.Random(1))
        assert output.rows() == [(0, "r0")]

    def test_empty_table(self) -> None:
        enclave = Enclave(cipher="authenticated", keep_trace_events=False)
        table = FlatStorage(enclave, SCHEMA, 0)
        output = oblivious_shuffle(table, random.Random(1))
        assert output.capacity == 0
        assert output.rows() == []

    def test_scratch_region_is_freed(self) -> None:
        enclave = Enclave(cipher="authenticated", keep_trace_events=False)
        table = load(enclave, 16, 9)
        regions_before = set(enclave.untrusted.region_names())
        output = oblivious_shuffle(table, random.Random(2))
        leftover = (
            set(enclave.untrusted.region_names())
            - regions_before
            - {output.region_name}
        )
        assert not leftover

    def test_oblivious_memory_charge_released(self) -> None:
        enclave = Enclave(cipher="authenticated", keep_trace_events=False)
        table = load(enclave, 32, 20)
        in_use = enclave.oblivious.in_use_bytes
        oblivious_shuffle(table, random.Random(3))
        assert enclave.oblivious.in_use_bytes == in_use
        assert enclave.oblivious.peak_bytes > in_use  # the pass was charged

"""Kill-and-replay crash-point sweep (the robustness acceptance test).

For every untrusted-access index ``k`` in a WAL-enabled workload, kill the
process at ``k`` (both *before* and *after* the access lands), recover from
the log into a fresh database, and check crash consistency:

* recovery replays exactly the committed prefix of the statement log;
* every acknowledged statement is durable (``acked <= committed``);
* a group-committed batch is never half-replayed;
* the recovered table equals a reference built from the committed prefix;
* the recovered database passes the fsck-style :meth:`ObliDB.verify`.

A full sweep is a few hundred crash/recover cycles; set ``FAULT_SWEEP=1``
(the CI fault-sweep job does) for a reduced-stride version.
"""

from __future__ import annotations

import os

import pytest

from repro import FaultPlan, ObliDB, SimulatedCrash
from repro.engine.database import _insert_statement_sql

STATEMENTS = [
    "CREATE TABLE t (id INT, name STR(8)) CAPACITY 8 METHOD flat",
    "INSERT INTO t VALUES (1, 'a')",
    "INSERT INTO t VALUES (2, 'b')",
    "UPDATE t SET name = 'z' WHERE id = 1",
    "DELETE FROM t WHERE id = 2",
    "INSERT INTO t VALUES (3, 'c')",
]
#: Ingest burst appended through ``insert_many`` — one group-committed batch.
BATCH = [(4, "d"), (5, "e"), (6, "f")]
#: Every statement in WAL order: what a crash-free run commits.
SUBMITTED = STATEMENTS + [_insert_statement_sql("t", row) for row in BATCH]


def _build(plan: FaultPlan) -> ObliDB:
    return ObliDB(cipher="null", wal=True, fault_plan=plan, retry=None)


def _run_workload(db: ObliDB, acked: list[str]) -> None:
    for statement in STATEMENTS:
        db.sql(statement)
        acked.append(statement)
    db.insert_many("t", list(BATCH))
    acked.extend(SUBMITTED[len(STATEMENTS) :])


def _total_accesses() -> int:
    db = _build(FaultPlan())
    acked: list[str] = []
    _run_workload(db, acked)
    assert db.wal.committed_count == len(SUBMITTED)
    return db.enclave.untrusted.accesses


_reference_cache: dict[int, list] = {}


def _reference_rows(committed: int) -> list:
    """Rows of a fresh database that executed the committed prefix."""
    if committed not in _reference_cache:
        reference = ObliDB(cipher="null")
        for statement in SUBMITTED[:committed]:
            reference.sql(statement)
        _reference_cache[committed] = sorted(
            reference.sql("SELECT * FROM t").rows
        )
    return _reference_cache[committed]


@pytest.mark.parametrize("mode", ["at", "after"])
def test_crash_point_sweep(mode):
    total = _total_accesses()
    stride = max(1, total // 25) if os.environ.get("FAULT_SWEEP") == "1" else 1
    saw_torn_tail = False
    for k in range(0, total, stride):
        plan = FaultPlan()
        plan.crash_at(k) if mode == "at" else plan.crash_after(k)
        db = _build(plan)
        acked: list[str] = []
        with pytest.raises(SimulatedCrash):
            _run_workload(db, acked)
        committed = db.wal.committed_count
        # Durability: every acknowledged statement is covered by the head.
        assert len(acked) <= committed <= len(SUBMITTED), f"k={k}"
        # Group commit is atomic: the ingest batch is all-in or all-out.
        assert committed <= len(STATEMENTS) or committed == len(SUBMITTED), (
            f"k={k}: group-committed batch split at {committed}"
        )
        recovered = ObliDB(cipher="null")
        report = recovered.recover(db.wal)
        assert report.replayed == committed, f"k={k}"
        saw_torn_tail = saw_torn_tail or report.dropped_tail > 0
        if committed:
            recovered_rows = sorted(recovered.sql("SELECT * FROM t").rows)
            assert recovered_rows == _reference_rows(committed), f"k={k}"
        check = recovered.verify()
        assert check.ok, f"k={k}: {check.issues}"
    if stride == 1:
        # A full sweep must reach the window between a WAL record write
        # and its ledger-head commit: the detected-and-dropped torn tail.
        assert saw_torn_tail

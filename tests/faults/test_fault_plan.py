"""Unit tests for the fault-injection layer: every FaultPlan action fires,
is detected by the matching typed error, and the faulty host stays
observably identical to the honest one when no fault is armed."""

from __future__ import annotations

import pytest

from repro import FaultPlan, ObliDB, RetryPolicy, SimulatedCrash
from repro.enclave import (
    Enclave,
    IntegrityError,
    ObliDBError,
    RollbackError,
    TransientStorageError,
)
from repro.faults import FaultyUntrustedMemory
from repro.storage import FlatStorage


def faulty_enclave(plan: FaultPlan, cipher: str = "authenticated") -> Enclave:
    return Enclave(
        oblivious_memory_bytes=1 << 24,
        cipher=cipher,
        untrusted_factory=lambda trace, cost: FaultyUntrustedMemory(
            trace, cost, plan
        ),
    )


def probe_db(plan: FaultPlan, retry: RetryPolicy | None = None) -> ObliDB:
    """A small WAL-less database under the given plan (cheap cipher)."""
    db = ObliDB(cipher="null", fault_plan=plan, retry=retry)
    db.sql("CREATE TABLE t (id INT) CAPACITY 4 METHOD flat")
    db.sql("INSERT INTO t VALUES (1)")
    return db


class TestTransparency:
    def test_empty_plan_is_observably_identical(self, kv_schema):
        honest = Enclave(oblivious_memory_bytes=1 << 24)
        faulty = faulty_enclave(FaultPlan())
        for enclave in (honest, faulty):
            store = FlatStorage(enclave, kv_schema, 8, name="t")
            store.insert_many([(i, f"v{i}") for i in range(6)])
            store.update(lambda r: r[0] == 3, lambda r: (r[0], "x"))
            store.delete(lambda r: r[0] == 1)
            assert sorted(store.rows()) == sorted(
                [(0, "v0"), (2, "v2"), (3, "x"), (4, "v4"), (5, "v5")]
            )
        honest_events = [(e.op, e.region, e.index) for e in honest.trace.events]
        faulty_events = [(e.op, e.region, e.index) for e in faulty.trace.events]
        assert honest_events == faulty_events

    def test_access_counter_matches_trace_length(self, kv_schema):
        faulty = faulty_enclave(FaultPlan(), cipher="null")
        store = FlatStorage(faulty, kv_schema, 8, name="t")
        store.insert((1, "a"))
        store.rows()
        assert faulty.untrusted.accesses == len(faulty.trace.events)

    def test_scalar_fallback_is_observably_identical(self, kv_schema):
        # An armed slot fault whose index never occurs forces the scalar
        # decomposition on every batch touching the region without ever
        # firing; trace and counter must match the honest run exactly.
        honest = Enclave(oblivious_memory_bytes=1 << 24)
        faulty = faulty_enclave(FaultPlan().tamper("t", 999_999))
        for enclave in (honest, faulty):
            store = FlatStorage(enclave, kv_schema, 8, name="t")
            store.insert_many([(i, "v") for i in range(3)])
            store.rows()
        honest_events = [(e.op, e.region, e.index) for e in honest.trace.events]
        faulty_events = [(e.op, e.region, e.index) for e in faulty.trace.events]
        assert honest_events == faulty_events
        assert faulty.untrusted.accesses == len(faulty_events)


class TestSlotFaults:
    def test_tamper_raises_integrity_error(self, kv_schema):
        plan = FaultPlan().tamper("t", 2)
        store = FlatStorage(faulty_enclave(plan), kv_schema, 8, name="t")
        with pytest.raises(IntegrityError):
            store.insert_many([(i, "v") for i in range(4)])
            store.rows()

    def test_tamper_matches_region_glob(self, kv_schema):
        plan = FaultPlan().tamper("tab*", 0)
        store = FlatStorage(faulty_enclave(plan), kv_schema, 4, name="table:x")
        with pytest.raises(IntegrityError):
            store.insert((1, "a"))

    def test_serve_stale_raises_rollback_error(self, kv_schema):
        plan = FaultPlan().serve_stale("t", 0)
        store = FlatStorage(faulty_enclave(plan), kv_schema, 4, name="t")
        store.insert((1, "a"))  # the overwrite arms the saved old copy
        with pytest.raises(RollbackError, match="stale block"):
            store.rows()

    def test_serve_stale_detected_under_null_cipher(self, kv_schema):
        # NullCipher still binds the AAD via checksum, so rollback
        # detection holds on the cheap cipher the crash sweep uses.
        plan = FaultPlan().serve_stale("t", 0)
        store = FlatStorage(
            faulty_enclave(plan, cipher="null"), kv_schema, 4, name="t"
        )
        store.insert((1, "a"))
        with pytest.raises(RollbackError):
            store.rows()

    def test_drop_write_raises_rollback_error(self, kv_schema):
        # A dropped overwrite leaves the previous revision in the slot:
        # indistinguishable from (and classified as) a rollback.
        plan = FaultPlan()
        store = FlatStorage(faulty_enclave(plan), kv_schema, 4, name="t")
        plan.drop_write("t", 1)
        store.insert((1, "a"))  # the pass's write to slot 1 is discarded
        with pytest.raises(RollbackError):
            store.rows()

    def test_duplicate_write_raises_integrity_error(self, kv_schema):
        # The relocated block fails its (region, index) identity binding.
        plan = FaultPlan()
        store = FlatStorage(faulty_enclave(plan), kv_schema, 4, name="t")
        plan.duplicate_write("t", 0, to_index=3)
        store.fast_insert((1, "a"))  # the host also copies the block to slot 3
        with pytest.raises(IntegrityError):
            store.rows()

    def test_torn_batched_write_raises_typed_error(self, kv_schema):
        plan = FaultPlan()
        store = FlatStorage(faulty_enclave(plan), kv_schema, 8, name="t")
        plan.torn_write("t", keep=2)
        with pytest.raises(ObliDBError):
            # Only 2 of 4 appended rows reach storage: the next full read
            # detects the rolled-back suffix slots as typed errors.
            store.fast_insert_many([(i, "v") for i in range(4)])
            store.rows()

    def test_faults_fire_at_most_once(self, kv_schema):
        plan = FaultPlan().tamper("t", 0)
        store = FlatStorage(faulty_enclave(plan), kv_schema, 4, name="t")
        with pytest.raises(IntegrityError):
            store.insert((1, "a"))
        assert not plan.armed_for("t")


class TestCounterFaults:
    def test_crash_at_raises_before_the_access(self, kv_schema):
        plan = FaultPlan().crash_at(4)
        enclave = faulty_enclave(plan, cipher="null")
        store = FlatStorage(enclave, kv_schema, 4, name="t")  # 4 init writes
        with pytest.raises(SimulatedCrash):
            store.insert((1, "a"))
        assert enclave.untrusted.accesses == 4  # access 4 never happened

    def test_crash_after_lands_the_access_first(self, kv_schema):
        plan = FaultPlan().crash_after(4)
        enclave = faulty_enclave(plan, cipher="null")
        store = FlatStorage(enclave, kv_schema, 4, name="t")
        with pytest.raises(SimulatedCrash):
            store.insert((1, "a"))
        assert enclave.untrusted.accesses == 5  # access 4 took effect

    def test_crash_is_not_swallowed_by_retry(self):
        probe = probe_db(FaultPlan())
        total = probe.enclave.untrusted.accesses
        db = probe_db(FaultPlan())  # default retry stays ON
        with pytest.raises(SimulatedCrash):
            db.retry = RetryPolicy(attempts=5, sleep=lambda _: None)
            db.enclave.untrusted.plan.crash_at(total + 1)
            db.sql("SELECT * FROM t")

    def test_transient_then_success_via_retry(self):
        probe = probe_db(FaultPlan())
        select_start = probe.enclave.untrusted.accesses
        sleeps: list[float] = []
        db = probe_db(
            FaultPlan().transient_at(select_start),
            retry=RetryPolicy(attempts=3, backoff_s=0.25, sleep=sleeps.append),
        )
        # The SELECT's first access fails transiently once; nothing has
        # mutated, so the statement boundary retries and succeeds.
        assert db.sql("SELECT * FROM t").rows == [(1,)]
        assert sleeps == [0.25]

    def test_transient_exhausts_retry_budget(self):
        probe = probe_db(FaultPlan())
        select_start = probe.enclave.untrusted.accesses
        sleeps: list[float] = []
        # A failed (un-applied) access does not advance the counter, so the
        # retried SELECT starts at the same index: arm two one-shot faults.
        plan = FaultPlan().transient_at(select_start).transient_at(select_start)
        db = probe_db(
            plan, retry=RetryPolicy(attempts=2, backoff_s=1.0, sleep=sleeps.append)
        )
        with pytest.raises(TransientStorageError):
            db.sql("SELECT * FROM t")
        assert sleeps == [1.0]

    def test_transient_mid_mutation_is_not_retried(self):
        probe = probe_db(FaultPlan())
        insert_end = probe.enclave.untrusted.accesses
        sleeps: list[float] = []
        db = ObliDB(
            cipher="null",
            fault_plan=FaultPlan().transient_at(insert_end - 1),
            retry=RetryPolicy(attempts=5, backoff_s=0.5, sleep=sleeps.append),
        )
        db.sql("CREATE TABLE t (id INT) CAPACITY 4 METHOD flat")
        # The strike hits the INSERT pass's final write: the mutation has
        # started, so it must surface unretried (a retry would re-apply
        # the surviving prefix of the pass).
        with pytest.raises(TransientStorageError):
            db.sql("INSERT INTO t VALUES (1)")
        assert sleeps == []

"""Property-based tests for the extension components."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ObliDB
from repro.enclave import Enclave
from repro.oram import RingORAM
from repro.operators import is_sorted, randomized_shellsort
from repro.storage import FlatStorage, Schema, int_column

CAPACITY = 20


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=CAPACITY - 1),
            st.one_of(st.none(), st.binary(min_size=0, max_size=10)),
        ),
        max_size=50,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_ring_oram_equivalent_to_array(ops, seed) -> None:
    enclave = Enclave(oblivious_memory_bytes=1 << 20, cipher="null")
    oram = RingORAM(enclave, CAPACITY, block_size=10, rng=random.Random(seed))
    mirror: dict[int, bytes] = {}
    for block, payload in ops:
        if payload is None:
            assert oram.read(block) == mirror.get(block)
        else:
            oram.write(block, payload)
            mirror[block] = payload
    for block in range(CAPACITY):
        assert oram.read(block) == mirror.get(block)
    oram.free()
    assert enclave.oblivious.in_use_bytes == 0


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(st.integers(-(10**6), 10**6), max_size=40),
    capacity_pad=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_shellsort_sorts_or_is_detected(values, capacity_pad, seed) -> None:
    """Randomized Shellsort either sorts or the verifier notices — there is
    no silent wrong answer."""
    enclave = Enclave(cipher="null")
    schema = Schema([int_column("x")])
    table = FlatStorage(enclave, schema, len(values) + capacity_pad + 1)
    for value in values:
        table.fast_insert((value,))
    key = lambda row: (row[0],)  # noqa: E731
    randomized_shellsort(table, key, rng=random.Random(seed))
    if is_sorted(table, key):
        rows = [table.read_row(i) for i in range(table.capacity)]
        reals = [row[0] for row in rows if row is not None]
        assert reals == sorted(values)
        assert all(row is None for row in rows[len(values):])


@settings(max_examples=15, deadline=None)
@given(
    statements=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.sampled_from(["insert", "delete"]),
        ),
        max_size=25,
    )
)
def test_wal_replay_reaches_identical_state(statements) -> None:
    db = ObliDB(cipher="null", wal=True, seed=1)
    db.sql("CREATE TABLE t (k INT) CAPACITY 64")
    model: set[int] = set()
    for key, action in statements:
        if action == "insert" and key not in model:
            db.sql(f"INSERT INTO t VALUES ({key})")
            model.add(key)
        elif action == "delete" and key in model:
            db.sql(f"DELETE FROM t WHERE k = {key}")
            model.discard(key)
    recovered = ObliDB(cipher="null", seed=2)
    assert db.wal is not None
    recovered.recover_from(db.wal)
    assert sorted(recovered.sql("SELECT * FROM t").rows) == sorted(
        (key,) for key in model
    )


@settings(max_examples=15, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 100)), max_size=24
    ),
    limit=st.integers(min_value=0, max_value=30),
    descending=st.booleans(),
)
def test_order_limit_matches_python(rows, limit, descending) -> None:
    db = ObliDB(cipher="null", seed=3)
    db.sql("CREATE TABLE t (k INT, v INT) CAPACITY 32")
    for k, v in rows:
        db.sql(f"INSERT INTO t VALUES ({k}, {v})")
    direction = "DESC" if descending else "ASC"
    result = db.sql(f"SELECT v FROM t ORDER BY v {direction} LIMIT {limit}")
    expected = sorted((v for _, v in rows), reverse=descending)[:limit]
    assert [row[0] for row in result.rows] == expected

"""Property-based tests: every oblivious operator agrees with plain Python."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enclave import Enclave
from repro.operators import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    aggregate,
    bitonic_sort,
    continuous_select,
    group_by_aggregate,
    hash_join,
    hash_select,
    large_select,
    naive_select,
    opaque_join,
    small_select,
    zero_om_join,
)
from repro.storage import FlatStorage, Schema, int_column

SCHEMA = Schema([int_column("k"), int_column("v")])


def load(rows: list[tuple[int, int]], capacity: int | None = None) -> FlatStorage:
    enclave = Enclave(oblivious_memory_bytes=1 << 20, cipher="null")
    table = FlatStorage(enclave, SCHEMA, capacity or max(1, len(rows)))
    for row in rows:
        table.fast_insert(row)
    return table


rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=99)),
    max_size=40,
)


@settings(max_examples=30, deadline=None)
@given(rows=rows_strategy, threshold=st.integers(min_value=0, max_value=50))
def test_selects_agree_with_filter(rows, threshold) -> None:
    table = load(rows)
    predicate = Comparison("k", "<", threshold)
    expected = sorted(row for row in rows if row[0] < threshold)
    output_size = len(expected)

    for select in (
        lambda: small_select(table, predicate, output_size, buffer_rows=4),
        lambda: large_select(table, predicate),
        lambda: hash_select(table, predicate, output_size),
        lambda: naive_select(table, predicate, output_size, rng=random.Random(1)),
    ):
        out = select()
        assert sorted(out.rows()) == expected
        out.free()


@settings(max_examples=30, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 99)),
        max_size=30,
    ),
    threshold=st.integers(min_value=0, max_value=1000),
)
def test_continuous_select_on_sorted_input(rows, threshold) -> None:
    """On key-sorted input, a `<` predicate always selects a prefix, so the
    Continuous algorithm applies and must agree with plain filtering."""
    ordered = sorted(rows)
    table = load(ordered)
    predicate = Comparison("k", "<", threshold)
    expected = sorted(row for row in ordered if row[0] < threshold)
    out = continuous_select(table, predicate, len(expected))
    assert sorted(out.rows()) == expected
    out.free()


@settings(max_examples=30, deadline=None)
@given(rows=rows_strategy)
def test_aggregates_agree_with_python(rows) -> None:
    table = load(rows)
    result = aggregate(
        table,
        [
            AggregateSpec(AggregateFunction.COUNT),
            AggregateSpec(AggregateFunction.SUM, "v"),
            AggregateSpec(AggregateFunction.MIN, "v"),
            AggregateSpec(AggregateFunction.MAX, "v"),
        ],
    )
    values = [row[1] for row in rows]
    assert result[0] == len(rows)
    assert result[1] == sum(values)
    if values:
        assert result[2] == min(values)
        assert result[3] == max(values)


@settings(max_examples=25, deadline=None)
@given(rows=rows_strategy)
def test_group_by_agrees_with_python(rows) -> None:
    table = load(rows)
    out = group_by_aggregate(
        table, "k", [AggregateSpec(AggregateFunction.SUM, "v")]
    )
    expected: dict[int, float] = {}
    for key, value in rows:
        expected[key] = expected.get(key, 0.0) + value
    assert sorted(out.rows()) == sorted(expected.items())
    out.free()


@settings(max_examples=20, deadline=None)
@given(
    left=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 99)),
        max_size=12,
        unique_by=lambda row: row[0],  # primary side: unique keys
    ),
    right=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 99)), max_size=20
    ),
)
def test_joins_agree_with_python(left, right) -> None:
    enclave = Enclave(oblivious_memory_bytes=1 << 20, cipher="null")
    left_table = FlatStorage(enclave, SCHEMA, max(1, len(left)))
    right_table = FlatStorage(enclave, SCHEMA, max(1, len(right)))
    for row in left:
        left_table.fast_insert(row)
    for row in right:
        right_table.fast_insert(row)
    expected = sorted(
        lhs + rhs for lhs in left for rhs in right if lhs[0] == rhs[0]
    )
    for join in (
        lambda: hash_join(left_table, right_table, "k", "k", 1 << 16),
        lambda: hash_join(left_table, right_table, "k", "k", 100),
        lambda: opaque_join(left_table, right_table, "k", "k", 1 << 12),
        lambda: zero_om_join(left_table, right_table, "k", "k"),
    ):
        out = join()
        assert sorted(out.rows()) == expected
        out.free()


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(-1000, 1000), max_size=32),
    enclave_rows=st.sampled_from([1, 4, 16]),
)
def test_bitonic_sort_agrees_with_sorted(values, enclave_rows) -> None:
    capacity = 1
    while capacity < max(1, len(values)):
        capacity *= 2
    enclave = Enclave(oblivious_memory_bytes=1 << 20, cipher="null")
    table = FlatStorage(enclave, SCHEMA, capacity)
    for value in values:
        table.fast_insert((value, 0))
    bitonic_sort(table, key=lambda row: (row[0],), enclave_rows=enclave_rows)
    result = [table.read_row(i) for i in range(capacity)]
    reals = [row[0] for row in result if row is not None]
    assert reals == sorted(values)
    assert all(row is None for row in result[len(values):])

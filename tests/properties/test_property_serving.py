"""Property-based concurrency: random interleavings vs a sequential oracle.

Hypothesis generates a mixed workload of reads, writes, and DDL, splits it
across three concurrent sessions, and runs it through the serving front
end.  The server's ``on_statement_executed`` hook logs every execution
(and its result) under the engine lock, in serialization order.  A fresh
single-threaded database then replays that exact log and must agree with
everything the concurrent run observed:

* each logged statement's rows / affected count match the oracle's;
* the final contents of every table match;
* the final revision epochs match (same number of mutations applied).

This is the linearizability check in executable form: whatever order the
lock and the per-table FIFO queues produced, that order — applied
sequentially — explains every result the concurrent clients saw.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ObliDB, ObliDBServer
from repro.serving import ServerHooks

pytestmark = pytest.mark.serving

SESSIONS = 3
TABLES = ("ta", "tb")


def op_strategy():
    """One client operation: a read, write, or DDL over the fixed tables."""
    table = st.sampled_from(TABLES)
    key = st.integers(min_value=0, max_value=15)
    value = st.integers(min_value=0, max_value=99)
    reads = st.one_of(
        st.tuples(st.just("select_all"), table, st.just(0)),
        st.tuples(st.just("select_point"), table, key),
        st.tuples(st.just("select_agg"), table, st.just(0)),
    )
    writes = st.one_of(
        st.tuples(st.just("insert"), table, st.tuples(key, value)),
        st.tuples(st.just("update"), table, st.tuples(key, value)),
        st.tuples(st.just("delete"), table, key),
    )
    return st.one_of(reads, reads, writes)  # read-heavy, like serving is


def to_sql(op) -> str:
    kind, table, arg = op
    if kind == "select_all":
        return f"SELECT * FROM {table}"
    if kind == "select_point":
        return f"SELECT * FROM {table} WHERE k = {arg}"
    if kind == "select_agg":
        return f"SELECT COUNT(*), SUM(v) FROM {table}"
    if kind == "insert":
        return f"INSERT INTO {table} VALUES ({arg[0]}, {arg[1]})"
    if kind == "update":
        return f"UPDATE {table} SET v = {arg[1]} WHERE k = {arg[0]}"
    assert kind == "delete"
    return f"DELETE FROM {table} WHERE k = {arg}"


def build_db() -> ObliDB:
    db = ObliDB(cipher="null", seed=1, allow_continuous=False)
    for table in TABLES:
        db.sql(f"CREATE TABLE {table} (k INT, v INT) CAPACITY 64")
        db.insert_many(table, [(k, k) for k in range(0, 8)])
    return db


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(op_strategy(), min_size=3, max_size=24),
    salt=st.integers(min_value=0, max_value=2**16),
)
def test_concurrent_run_linearizes(ops, salt) -> None:
    # Split the workload round-robin (salted) across the sessions.
    scripts: list[list[str]] = [[] for _ in range(SESSIONS)]
    for index, op in enumerate(ops):
        scripts[(index + salt) % SESSIONS].append(to_sql(op))

    db = build_db()
    log: list[tuple[str, list, int]] = []  # (text, rows, affected), serialized

    def on_executed(text: str, result) -> None:
        log.append((text, list(result.rows), result.affected))

    server = ObliDBServer(
        db, hooks=ServerHooks(on_statement_executed=on_executed)
    )
    errors: list[BaseException] = []

    def client(index: int) -> None:
        session = server.session(f"s{index}")
        try:
            for sql in scripts[index]:
                session.execute(sql)
        except BaseException as error:  # pragma: no cover - diagnostic
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(SESSIONS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors

    # Coalescing answers some reads without an execution, so the log may
    # be shorter than the op list — but never longer.
    assert len(log) <= len(ops)

    # Oracle: a fresh single-threaded database replays the serialization
    # order and must reproduce every logged observation.
    oracle = build_db()
    for text, rows, affected in log:
        expected = oracle.sql(text)
        assert sorted(expected.rows) == sorted(rows), text
        assert expected.affected == affected, text

    # Final states agree: contents and revision epochs per table.
    for table in TABLES:
        assert sorted(db.sql(f"SELECT * FROM {table}").rows) == sorted(
            oracle.sql(f"SELECT * FROM {table}").rows
        )
        assert db.table(table).revision == oracle.table(table).revision

"""Property-based tests for Path ORAM: it must behave as a plain array."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enclave import Enclave
from repro.oram import PathORAM, RecursivePathORAM

CAPACITY = 24


def operations_strategy():
    """Sequences of (block_id, payload-or-None-for-read)."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=CAPACITY - 1),
            st.one_of(st.none(), st.binary(min_size=0, max_size=12)),
        ),
        max_size=60,
    )


@settings(max_examples=40, deadline=None)
@given(ops=operations_strategy(), seed=st.integers(min_value=0, max_value=2**16))
def test_path_oram_equivalent_to_array(ops, seed) -> None:
    enclave = Enclave(oblivious_memory_bytes=1 << 20, cipher="null")
    oram = PathORAM(enclave, CAPACITY, block_size=12, rng=random.Random(seed))
    mirror: dict[int, bytes] = {}
    for block, payload in ops:
        if payload is None:
            assert oram.read(block) == mirror.get(block)
        else:
            oram.write(block, payload)
            mirror[block] = payload
    for block in range(CAPACITY):
        assert oram.read(block) == mirror.get(block)
    oram.free()
    assert enclave.oblivious.in_use_bytes == 0


@settings(max_examples=15, deadline=None)
@given(ops=operations_strategy(), seed=st.integers(min_value=0, max_value=2**16))
def test_recursive_oram_equivalent_to_array(ops, seed) -> None:
    enclave = Enclave(oblivious_memory_bytes=1 << 20, cipher="null")
    oram = RecursivePathORAM(enclave, CAPACITY, block_size=12, rng=random.Random(seed))
    mirror: dict[int, bytes] = {}
    for block, payload in ops:
        if payload is None:
            assert oram.read(block) == mirror.get(block)
        else:
            oram.write(block, payload)
            mirror[block] = payload
    oram.free()


@settings(max_examples=20, deadline=None)
@given(
    accesses=st.lists(st.integers(min_value=0, max_value=CAPACITY - 1), max_size=40),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_every_access_touches_constant_buckets(accesses, seed) -> None:
    """Invariant: each ORAM access makes exactly 2*levels block transfers."""
    enclave = Enclave(oblivious_memory_bytes=1 << 20, cipher="null")
    oram = PathORAM(enclave, CAPACITY, block_size=8, rng=random.Random(seed))
    for block in accesses:
        before = enclave.cost.block_ios
        oram.read(block)
        assert enclave.cost.block_ios - before == 2 * oram.levels
    oram.free()

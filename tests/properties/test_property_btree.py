"""Property-based tests for the oblivious B+ tree against a dict model."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enclave import Enclave
from repro.storage import ObliviousBPlusTree, Schema, int_column, str_column

SCHEMA = Schema([int_column("key"), str_column("value", 12)])


def command_strategy():
    """Insert/delete/search commands over a small key space."""
    key = st.integers(min_value=0, max_value=30)
    return st.lists(
        st.one_of(
            st.tuples(st.just("insert"), key),
            st.tuples(st.just("delete"), key),
            st.tuples(st.just("search"), key),
        ),
        max_size=80,
    )


@settings(max_examples=30, deadline=None)
@given(commands=command_strategy(), seed=st.integers(min_value=0, max_value=2**16))
def test_btree_matches_dict_model(commands, seed) -> None:
    """Unique-key usage: the tree behaves as a sorted dict."""
    enclave = Enclave(oblivious_memory_bytes=1 << 22, cipher="null")
    tree = ObliviousBPlusTree(
        enclave, SCHEMA, "key", capacity=128, rng=random.Random(seed)
    )
    model: dict[int, str] = {}
    for step, (command, key) in enumerate(commands):
        if command == "insert":
            if key not in model:  # keep keys unique to match the dict model
                value = f"v{step}"
                tree.insert((key, value))
                model[key] = value
        elif command == "delete":
            assert tree.delete(key) == (1 if key in model else 0)
            model.pop(key, None)
        else:
            expected = [(key, model[key])] if key in model else []
            assert tree.search(key) == expected
    # Final full-structure checks.
    assert tree.count == len(model)
    assert [row[0] for row in tree.items()] == sorted(model)
    assert sorted(row[0] for row in tree.linear_scan()) == sorted(model)


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=-1000, max_value=1000), unique=True, max_size=50
    ),
    low=st.integers(min_value=-1000, max_value=1000),
    span=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_range_scan_matches_filter(keys, low, span, seed) -> None:
    enclave = Enclave(oblivious_memory_bytes=1 << 22, cipher="null")
    tree = ObliviousBPlusTree(
        enclave, SCHEMA, "key", capacity=128, rng=random.Random(seed)
    )
    for key in keys:
        tree.insert((key, "x"))
    high = low + span
    result = [row[0] for row in tree.range_scan(low, high)]
    assert result == sorted(key for key in keys if low <= key <= high)


@settings(max_examples=10, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=10_000),
        unique=True,
        min_size=20,
        max_size=60,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_insert_cost_invariant_within_height(keys, seed) -> None:
    """Whatever keys hypothesis picks, inserts at equal height cost the
    same number of ORAM accesses — the padding invariant."""
    enclave = Enclave(oblivious_memory_bytes=1 << 22, cipher="null")
    tree = ObliviousBPlusTree(
        enclave, SCHEMA, "key", capacity=256, rng=random.Random(seed)
    )
    cost_by_height: dict[int, set[int]] = {}
    for key in keys:
        before = enclave.cost.oram_accesses
        tree.insert((key, "x"))
        cost_by_height.setdefault(tree.height, set()).add(
            enclave.cost.oram_accesses - before
        )
    for height, costs in cost_by_height.items():
        # Allow two values per height bucket: ops that grew the tree into
        # this height are padded against the new height mid-operation.
        assert len(costs) <= 2, (height, costs)

"""Property-based tests for the SQL engine against a Python list model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ObliDB
from repro.analysis import assert_indistinguishable, canonicalize, oram_regions_of
from repro.enclave import Enclave
from repro.operators import Comparison
from repro.planner import plan_select, execute_select
from repro.storage import FlatStorage, Schema, int_column


@settings(max_examples=15, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 9)), max_size=20
    ),
    threshold=st.integers(min_value=0, max_value=30),
)
def test_sql_select_matches_model(rows, threshold) -> None:
    db = ObliDB(cipher="null", seed=1)
    db.sql("CREATE TABLE t (k INT, g INT) CAPACITY 32")
    for k, g in rows:
        db.sql(f"INSERT INTO t VALUES ({k}, {g})")
    result = db.sql(f"SELECT * FROM t WHERE k < {threshold}")
    assert sorted(result.rows) == sorted(row for row in rows if row[0] < threshold)


@settings(max_examples=15, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 4)), max_size=20
    ),
)
def test_sql_group_by_matches_model(rows) -> None:
    db = ObliDB(cipher="null", seed=2)
    db.sql("CREATE TABLE t (k INT, g INT) CAPACITY 32")
    for k, g in rows:
        db.sql(f"INSERT INTO t VALUES ({k}, {g})")
    result = db.sql("SELECT g, SUM(k) FROM t GROUP BY g")
    expected: dict[int, float] = {}
    for k, g in rows:
        expected[g] = expected.get(g, 0.0) + k
    assert sorted(result.rows) == sorted(expected.items())


@settings(max_examples=10, deadline=None)
@given(
    data=st.data(),
    capacity=st.integers(min_value=8, max_value=24),
    matches=st.integers(min_value=1, max_value=6),
)
def test_planned_select_trace_depends_only_on_leakage(data, capacity, matches) -> None:
    """Randomised obliviousness property: two tables with the same size and
    the same number of (scattered) matches produce identical traces under
    the planned selection."""
    matches = min(matches, capacity - 2)
    schema = Schema([int_column("x"), int_column("p")])
    traces = []
    algorithms = []
    for run in range(2):
        positions = set(
            data.draw(
                st.lists(
                    st.integers(0, capacity - 1),
                    min_size=matches,
                    max_size=matches,
                    unique=True,
                )
            )
        )
        # Avoid accidentally contiguous match sets, which would legitimately
        # change the (leaked) plan: force non-contiguity when possible.
        payloads = data.draw(
            st.lists(
                st.integers(2, 999), min_size=capacity, max_size=capacity
            )
        )
        enclave = Enclave(
            oblivious_memory_bytes=1 << 16, cipher="null", keep_trace_events=True
        )
        table = FlatStorage(enclave, schema, capacity)
        for index in range(capacity):
            value = 1 if index in positions else payloads[index]
            table.fast_insert((value, index))
        predicate = Comparison("x", "=", 1)
        decision = plan_select(table, predicate, allow_continuous=False)
        algorithms.append(decision.algorithm)
        enclave.trace.clear()
        out = execute_select(table, predicate, decision)
        traces.append(canonicalize(enclave.trace.events, oram_regions_of(enclave)))
        out.free()
    if algorithms[0] == algorithms[1]:
        assert_indistinguishable(traces)

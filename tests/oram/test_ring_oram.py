"""Unit tests for Ring ORAM."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave, ORAMError
from repro.oram import PathORAM, RingORAM


def make(enclave: Enclave, capacity: int = 64, seed: int = 1, **kwargs) -> RingORAM:
    return RingORAM(enclave, capacity, block_size=24, rng=random.Random(seed), **kwargs)


class TestRingCorrectness:
    def test_write_then_read(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave)
        oram.write(5, b"hello")
        assert oram.read(5) == b"hello"

    def test_unwritten_reads_none(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave)
        assert oram.read(3) is None

    def test_overwrite(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave)
        oram.write(0, b"a")
        oram.write(0, b"b")
        assert oram.read(0) == b"b"

    def test_many_random_operations(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave, capacity=50)
        rng = random.Random(42)
        mirror: dict[int, bytes] = {}
        for _ in range(2500):
            block = rng.randrange(50)
            if rng.random() < 0.5:
                payload = bytes([rng.randrange(256) for _ in range(8)])
                oram.write(block, payload)
                mirror[block] = payload
            else:
                assert oram.read(block) == mirror.get(block)

    def test_full_capacity(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave, capacity=32)
        for block in range(32):
            oram.write(block, block.to_bytes(4, "little"))
        for block in range(32):
            assert oram.read(block) == block.to_bytes(4, "little")

    def test_stash_bounded(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave, capacity=128)
        rng = random.Random(7)
        peak = 0
        for _ in range(3000):
            oram.write(rng.randrange(128), b"x")
            peak = max(peak, oram.stash_size)
        assert peak <= 128

    def test_bad_block_id(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave, capacity=8)
        with pytest.raises(IndexError):
            oram.read(8)

    def test_oversized_payload(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave)
        with pytest.raises(ValueError):
            oram.write(0, b"x" * 25)

    def test_use_after_free(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave)
        oram.free()
        with pytest.raises(ORAMError):
            oram.read(0)


class TestRingCostProfile:
    def test_online_read_cheaper_than_path(self, fast_enclave: Enclave) -> None:
        """The headline: Ring's per-access byte traffic undercuts Path's.

        Each Path IO moves a Z-slot bucket; each Ring IO moves one slot, so
        bytes = IOs (ring) vs IOs x Z (path)."""
        capacity, probes = 128, 200
        ring_enclave = Enclave(oblivious_memory_bytes=1 << 22, cipher="null")
        ring = RingORAM(ring_enclave, capacity, 24, rng=random.Random(1))
        path_enclave = Enclave(oblivious_memory_bytes=1 << 22, cipher="null")
        path = PathORAM(path_enclave, capacity, 24, rng=random.Random(1))
        rng = random.Random(2)
        for block in range(capacity):
            ring.write(block, b"x")
            path.write(block, b"x")
        ring_before = ring_enclave.cost.block_ios
        path_before = path_enclave.cost.block_ios
        for _ in range(probes):
            block = rng.randrange(capacity)
            ring.read(block)
            path.read(block)
        ring_bytes = (ring_enclave.cost.block_ios - ring_before) * 1
        path_bytes = (path_enclave.cost.block_ios - path_before) * 4  # Z slots
        assert ring_bytes < path_bytes
        # Section 8's "approximately 1.5x" improvement.
        assert path_bytes / ring_bytes >= 1.3

    def test_read_write_dummy_same_cost(self, fast_enclave: Enclave) -> None:
        """Reads, writes, and dummies are indistinguishable in cost.

        Compared at the same access-counter phase so the amortised eviction
        (every A-th access) lands identically."""
        oram = make(fast_enclave)
        rate = oram._eviction_rate
        costs = []
        for operation in (lambda: oram.read(1), lambda: oram.write(2, b"x"),
                          lambda: oram.dummy_access()):
            # Align to the start of an eviction period.
            while oram._access_count % rate != 0:
                oram.dummy_access()
            before = fast_enclave.cost.block_ios
            operation()
            costs.append(fast_enclave.cost.block_ios - before)
        assert len(set(costs)) == 1, costs

    def test_client_state_charged_to_oblivious_memory(self) -> None:
        enclave = Enclave(oblivious_memory_bytes=1 << 22, cipher="null")
        before = enclave.oblivious.in_use_bytes
        oram = RingORAM(enclave, 64, 16, rng=random.Random(1))
        assert enclave.oblivious.in_use_bytes > before
        oram.free()
        assert enclave.oblivious.in_use_bytes == before


class TestRingInTree:
    def test_btree_over_ring_oram(self, fast_enclave: Enclave, kv_schema) -> None:
        from repro.storage import IndexedStorage

        index = IndexedStorage(
            fast_enclave, kv_schema, "key", 96,
            rng=random.Random(3), oram_kind="ring",
        )
        keys = list(range(60))
        random.Random(5).shuffle(keys)
        for key in keys:
            index.insert((key, f"v{key}"))
        assert index.point_lookup(17) == [(17, "v17")]
        assert index.delete_key(17) == 1
        assert index.point_lookup(17) == []
        assert [row[0] for row in index.range_lookup(40, 45)] == list(range(40, 46))

"""Unit tests for the recursive Path ORAM."""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.oram import POSITION_MAP_BYTES_PER_BLOCK, PathORAM, RecursivePathORAM


def make(enclave: Enclave, capacity: int = 64, fanout: int = 16) -> RecursivePathORAM:
    return RecursivePathORAM(
        enclave, capacity, block_size=16, fanout=fanout, rng=random.Random(5)
    )


class TestRecursiveCorrectness:
    def test_write_then_read(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave)
        oram.write(10, b"payload")
        assert oram.read(10) == b"payload"

    def test_random_operations(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave, capacity=40)
        rng = random.Random(9)
        mirror: dict[int, bytes] = {}
        for _ in range(600):
            block = rng.randrange(40)
            if rng.random() < 0.5:
                payload = bytes([rng.randrange(256) for _ in range(8)])
                oram.write(block, payload)
                mirror[block] = payload
            else:
                assert oram.read(block) == mirror.get(block)

    def test_fanout_validation(self, fast_enclave: Enclave) -> None:
        with pytest.raises(ValueError):
            make(fast_enclave, fanout=1)

    def test_bad_block_id(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave, capacity=8)
        with pytest.raises(IndexError):
            oram.read(8)


class TestRecursiveCostProfile:
    def test_reduces_oblivious_memory_vs_nonrecursive(self) -> None:
        """The whole point of recursion: the charged position map shrinks by
        roughly the packing fanout."""
        capacity = 256
        flat_enclave = Enclave(oblivious_memory_bytes=1 << 22, cipher="null")
        flat = PathORAM(flat_enclave, capacity, 16, rng=random.Random(1))
        flat_bytes = flat_enclave.oblivious.in_use_bytes

        rec_enclave = Enclave(oblivious_memory_bytes=1 << 22, cipher="null")
        recursive = RecursivePathORAM(
            rec_enclave, capacity, 16, fanout=16, rng=random.Random(1)
        )
        rec_map_bytes = POSITION_MAP_BYTES_PER_BLOCK * recursive._map.capacity
        assert rec_map_bytes * 8 <= POSITION_MAP_BYTES_PER_BLOCK * capacity
        flat.free()
        recursive.free()
        assert flat_bytes > 0

    def test_roughly_double_access_cost(self, fast_enclave: Enclave) -> None:
        """Appendix B: one level of recursion costs ~2x per access."""
        oram = make(fast_enclave, capacity=64)
        before = fast_enclave.cost.oram_accesses
        oram.write(0, b"x")
        delta = fast_enclave.cost.oram_accesses - before
        assert delta == 2  # one map access + one data access

    def test_dummy_access_touches_both_orams(self, fast_enclave: Enclave) -> None:
        oram = make(fast_enclave)
        before = fast_enclave.cost.oram_accesses
        oram.dummy_access()
        assert fast_enclave.cost.oram_accesses - before == 2

"""Padding-burst accounting: ``dummy_accesses(n)`` and the B+ tree budgets.

The obliviousness of every padded operation rests on exact counts: a burst
of ``n`` dummies must spend exactly ``n`` logical accesses (times the
store's declared ``accesses_per_operation`` factor), including at the
boundaries — empty bursts, single dummies, and operations that land exactly
on their worst-case budget and therefore pad by zero.
"""

from __future__ import annotations

import random

import pytest

from repro.enclave import Enclave
from repro.oram.path_oram import PathORAM
from repro.oram.recursive import RecursivePathORAM
from repro.oram.ring_oram import RingORAM
from repro.storage import ObliviousBPlusTree, Schema, int_column, str_column

SCHEMA = Schema([int_column("key"), str_column("value", 8)])


def _enclave() -> Enclave:
    return Enclave(
        oblivious_memory_bytes=1 << 24, cipher="null", keep_trace_events=True
    )


class TestDummyAccessCounts:
    @pytest.mark.parametrize("count", [0, 1, 7])
    def test_path_oram_burst_spends_exactly_count(self, count: int) -> None:
        enclave = _enclave()
        oram = PathORAM(enclave, 16, block_size=8, rng=random.Random(1))
        before = enclave.cost.oram_accesses
        oram.dummy_accesses(count)
        assert enclave.cost.oram_accesses - before == count

    @pytest.mark.parametrize("count", [0, 1, 7])
    def test_ring_oram_burst_spends_exactly_count(self, count: int) -> None:
        enclave = _enclave()
        oram = RingORAM(enclave, 16, block_size=8, rng=random.Random(1))
        before = enclave.cost.oram_accesses
        oram.dummy_accesses(count)
        assert enclave.cost.oram_accesses - before == count

    @pytest.mark.parametrize("count", [0, 1, 5])
    def test_recursive_burst_scales_by_declared_factor(self, count: int) -> None:
        """The recursive ORAM spends one data + one position-map access per
        logical dummy; its declared factor must match what it spends."""
        enclave = _enclave()
        oram = RecursivePathORAM(enclave, 16, block_size=8, rng=random.Random(1))
        assert oram.accesses_per_operation == 2
        before = enclave.cost.oram_accesses
        oram.dummy_accesses(count)
        assert enclave.cost.oram_accesses - before == 2 * count

    def test_burst_trace_equals_individual_dummies(self) -> None:
        """A burst is exactly n dummy accesses, trace event for event."""
        enclave_a, enclave_b = _enclave(), _enclave()
        burst = RingORAM(enclave_a, 16, block_size=8, rng=random.Random(9))
        loop = RingORAM(enclave_b, 16, block_size=8, rng=random.Random(9))
        burst.dummy_accesses(6)
        for _ in range(6):
            loop.dummy_access()
        assert enclave_a.trace.matches(enclave_b.trace)
        assert enclave_a.cost.snapshot() == enclave_b.cost.snapshot()


class TestBTreePaddingBudgets:
    """Every padded mutation must land *exactly* on its worst-case budget —
    the padding burst makes up whatever the real work left over, including
    the region-boundary cases (first insert into an empty tree, deletes
    that trigger merges) where the real access count differs most."""

    def _tree(self, oram_factory=None) -> tuple[Enclave, ObliviousBPlusTree]:
        enclave = _enclave()
        tree = ObliviousBPlusTree(
            enclave,
            SCHEMA,
            "key",
            capacity=64,
            rng=random.Random(3),
            oram_factory=oram_factory,
        )
        return enclave, tree

    def test_every_insert_costs_exactly_the_budget(self) -> None:
        enclave, tree = self._tree()
        for key in range(24):
            before = enclave.cost.oram_accesses
            tree.insert((key, f"v{key}"))
            spent = enclave.cost.oram_accesses - before
            assert spent == tree._worst_case_insert(tree.height)

    def test_every_delete_costs_exactly_the_budget(self) -> None:
        enclave, tree = self._tree()
        for key in range(24):
            tree.insert((key, f"v{key}"))
        for key in range(0, 24, 3):
            before = enclave.cost.oram_accesses
            assert tree.delete(key)
            spent = enclave.cost.oram_accesses - before
            # Budget: worst case at the post-rebalance height plus the fixed
            # two-leaf walk allowance for separator-equal keys.
            assert spent == tree._worst_case_delete(max(tree.height, 1)) + 2

    def test_recursive_store_budget_scales_by_factor(self) -> None:
        def factory(enclave, capacity, block_size, rng):
            return RecursivePathORAM(enclave, capacity, block_size, rng=rng)

        enclave, tree = self._tree(oram_factory=factory)
        for key in range(8):
            before = enclave.cost.oram_accesses
            tree.insert((key, f"v{key}"))
            spent = enclave.cost.oram_accesses - before
            assert spent == 2 * tree._worst_case_insert(tree.height)

"""Unit tests for the non-recursive Path ORAM."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.enclave import Enclave, ObliviousMemoryError, ORAMError
from repro.oram import POSITION_MAP_BYTES_PER_BLOCK, PathORAM


def make_oram(enclave: Enclave, capacity: int = 64, block_size: int = 32, seed: int = 1) -> PathORAM:
    return PathORAM(enclave, capacity, block_size, rng=random.Random(seed))


class TestCorrectness:
    def test_write_then_read(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave)
        oram.write(5, b"hello")
        assert oram.read(5) == b"hello"

    def test_unwritten_block_reads_none(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave)
        assert oram.read(3) is None

    def test_overwrite(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave)
        oram.write(0, b"a")
        oram.write(0, b"b")
        assert oram.read(0) == b"b"

    def test_many_random_operations(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave, capacity=50)
        rng = random.Random(42)
        mirror: dict[int, bytes] = {}
        for _ in range(1500):
            block = rng.randrange(50)
            if rng.random() < 0.5:
                payload = bytes([rng.randrange(256) for _ in range(8)])
                oram.write(block, payload)
                mirror[block] = payload
            else:
                assert oram.read(block) == mirror.get(block)

    def test_full_capacity(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave, capacity=32)
        for block in range(32):
            oram.write(block, block.to_bytes(4, "little"))
        for block in range(32):
            assert oram.read(block) == block.to_bytes(4, "little")

    def test_oversized_payload_rejected(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave, block_size=8)
        with pytest.raises(ValueError):
            oram.write(0, b"x" * 9)

    def test_bad_block_id_rejected(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave, capacity=8)
        with pytest.raises(IndexError):
            oram.read(8)
        with pytest.raises(IndexError):
            oram.write(-1, b"")

    def test_use_after_free_rejected(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave)
        oram.free()
        with pytest.raises(ORAMError):
            oram.read(0)

    def test_stash_stays_bounded(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave, capacity=128)
        rng = random.Random(7)
        for _ in range(2000):
            oram.write(rng.randrange(128), b"x")
        assert oram.stash_size <= 32  # well under the 256 limit


class TestObliviousness:
    def test_access_touches_one_full_path(self, fast_enclave: Enclave) -> None:
        """Every access reads then writes exactly `levels` buckets."""
        oram = make_oram(fast_enclave)
        fast_enclave.trace.clear()
        oram.read(0)
        events = fast_enclave.trace.events
        reads = [e for e in events if e.op == "R"]
        writes = [e for e in events if e.op == "W"]
        assert len(reads) == oram.levels
        assert len(writes) == oram.levels
        # The same buckets are read and written (path writeback).
        assert {e.index for e in reads} == {e.index for e in writes}

    def test_reads_and_writes_same_access_count(self, fast_enclave: Enclave) -> None:
        oram = make_oram(fast_enclave)
        fast_enclave.trace.clear()
        oram.read(1)
        read_len = len(fast_enclave.trace)
        fast_enclave.trace.clear()
        oram.write(2, b"x")
        write_len = len(fast_enclave.trace)
        fast_enclave.trace.clear()
        oram.dummy_access()
        dummy_len = len(fast_enclave.trace)
        assert read_len == write_len == dummy_len

    def test_leaf_choice_uniform(self, fast_enclave: Enclave) -> None:
        """Repeated accesses to one hot block must cover leaves uniformly —
        the statistical core of Path ORAM's guarantee."""
        oram = make_oram(fast_enclave, capacity=16, seed=3)
        oram.write(0, b"hot")
        leaf_counter: Counter[int] = Counter()
        for _ in range(600):
            fast_enclave.trace.clear()
            oram.read(0)
            leaf_bucket = max(
                e.index for e in fast_enclave.trace.events if e.op == "R"
            )
            leaf_counter[leaf_bucket] += 1
        # Every leaf of the (small) tree should be hit a reasonable number
        # of times; with 600 draws over <=8 leaves, expect >=30 each.
        assert len(leaf_counter) >= 2
        assert min(leaf_counter.values()) >= 30

    def test_position_map_charged_to_oblivious_memory(self) -> None:
        enclave = Enclave(oblivious_memory_bytes=1 << 20, cipher="null")
        before = enclave.oblivious.in_use_bytes
        oram = PathORAM(enclave, 100, 16, rng=random.Random(1))
        assert (
            enclave.oblivious.in_use_bytes - before
            >= POSITION_MAP_BYTES_PER_BLOCK * 100
        )
        oram.free()
        assert enclave.oblivious.in_use_bytes == before

    def test_oblivious_memory_budget_enforced(self) -> None:
        tiny = Enclave(oblivious_memory_bytes=64, cipher="null")
        with pytest.raises(ObliviousMemoryError):
            PathORAM(tiny, 1000, 16, rng=random.Random(1))

"""Unit tests for the ORAM block allocator."""

from __future__ import annotations

import pytest

from repro.enclave.errors import CapacityError
from repro.oram import BlockAllocator


class TestBlockAllocator:
    def test_sequential_allocation(self) -> None:
        allocator = BlockAllocator(4)
        assert [allocator.allocate() for _ in range(4)] == [0, 1, 2, 3]

    def test_exhaustion(self) -> None:
        allocator = BlockAllocator(2)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(CapacityError):
            allocator.allocate()

    def test_release_and_reuse(self) -> None:
        allocator = BlockAllocator(2)
        first = allocator.allocate()
        allocator.allocate()
        allocator.release(first)
        assert allocator.allocate() == first

    def test_release_unallocated_rejected(self) -> None:
        allocator = BlockAllocator(2)
        with pytest.raises(ValueError):
            allocator.release(0)

    def test_reserved_ids_skipped(self) -> None:
        allocator = BlockAllocator(4, reserved=2)
        assert allocator.allocate() == 2

    def test_reserved_exceeding_capacity_rejected(self) -> None:
        with pytest.raises(ValueError):
            BlockAllocator(2, reserved=3)

    def test_is_allocated(self) -> None:
        allocator = BlockAllocator(4)
        block = allocator.allocate()
        assert allocator.is_allocated(block)
        allocator.release(block)
        assert not allocator.is_allocated(block)

    def test_allocated_count(self) -> None:
        allocator = BlockAllocator(10)
        for _ in range(3):
            allocator.allocate()
        assert allocator.allocated_count == 3

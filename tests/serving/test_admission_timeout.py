"""Admission timeout: over-quota requests block with a deadline.

``admission_timeout_s=0`` keeps the historical fail-fast rejection; a
positive timeout turns rejection into bounded queueing — the request
succeeds if a slot frees within the deadline and raises
:class:`AdmissionError` naming the blocking limit otherwise.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving.policy import AdmissionError, AdmissionPolicy, TenantState


def test_zero_timeout_fails_fast():
    tenant = TenantState("t", AdmissionPolicy(max_in_flight=1))
    tenant.admit("read")
    start = time.monotonic()
    with pytest.raises(AdmissionError, match="max_in_flight=1"):
        tenant.admit("read")
    assert time.monotonic() - start < 0.2


def test_blocked_admit_succeeds_when_slot_frees():
    tenant = TenantState("t", AdmissionPolicy(max_in_flight=1, admission_timeout_s=5.0))
    tenant.admit("read")

    releaser = threading.Timer(0.05, tenant.release, args=("read",))
    releaser.start()
    try:
        tenant.admit("read")  # blocks until the timer releases the slot
    finally:
        releaser.join()
    assert tenant.depth() == 1
    tenant.release("read")


def test_timeout_expires_with_blocking_reason():
    tenant = TenantState("t", AdmissionPolicy(max_in_flight=1, admission_timeout_s=0.1))
    tenant.admit("write")
    start = time.monotonic()
    with pytest.raises(AdmissionError, match="max_in_flight=1 reached"):
        tenant.admit("read")
    elapsed = time.monotonic() - start
    assert elapsed >= 0.1
    # The blocked attempt must not have leaked an admission slot.
    assert tenant.depth() == 1


def test_class_quota_timeout_path():
    policy = AdmissionPolicy(class_quotas={"write": 1}, admission_timeout_s=0.05)
    tenant = TenantState("t", policy)
    tenant.admit("write")
    # Reads are not quota'd: they admit instantly despite the busy write.
    tenant.admit("read")
    with pytest.raises(AdmissionError, match="write quota=1 reached"):
        tenant.admit("write")
    # Free the write slot; the next write admits again.
    tenant.release("write")
    tenant.admit("write")


def test_release_wakes_all_waiters():
    tenant = TenantState("t", AdmissionPolicy(max_in_flight=2, admission_timeout_s=5.0))
    tenant.admit("read")
    tenant.admit("read")
    outcomes: list[str] = []

    def contend():
        try:
            tenant.admit("read")
            outcomes.append("admitted")
        except AdmissionError:
            outcomes.append("rejected")

    waiters = [threading.Thread(target=contend) for _ in range(2)]
    for w in waiters:
        w.start()
    time.sleep(0.05)
    tenant.release("read")
    tenant.release("read")
    for w in waiters:
        w.join(timeout=5.0)
    assert outcomes == ["admitted", "admitted"]
    assert tenant.depth() == 2


def test_negative_timeout_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        AdmissionPolicy(admission_timeout_s=-1.0)

"""Kill-and-replay under concurrency: N live sessions, one host kill.

The PR-6 crash-point sweep proved the single-caller story: kill the
process at every untrusted-access index, recover, and the committed
prefix survives exactly.  This suite re-runs that sweep with **four live
sessions** writing through the serving front end concurrently.  The
acked-durable contract must hold unchanged:

* every statement a session saw acknowledged is in the committed log;
* each session's acked statements appear in the log **in that session's
  submission order** (the per-table FIFO queues, not scheduling luck);
* a group-committed ``insert_many`` batch is never half-replayed;
* recovery replays exactly the committed prefix and passes ``verify()``;
* the recovered tables equal a sequential re-execution of the log.

Under threads the global untrusted-access index at which each statement
runs is nondeterministic, so unlike the single-caller sweep the checks
cannot assume *which* statements committed — only that whatever committed
is a consistent, acked-covering, order-preserving prefix.

A full sweep is hundreds of crash/recover cycles with thread spawns; the
default stride samples it, and ``FAULT_SWEEP=1`` (the CI job) samples a
coarser grid.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro import FaultPlan, ObliDB, ObliDBServer, SimulatedCrash
from repro.engine.database import _insert_statement_sql
from repro.serving import ServerCrashed

pytestmark = pytest.mark.serving

CREATES = [
    "CREATE TABLE t0 (id INT, name STR(8)) CAPACITY 8 METHOD flat",
    "CREATE TABLE t1 (id INT, name STR(8)) CAPACITY 8 METHOD flat",
    "CREATE TABLE shared (id INT, name STR(8)) CAPACITY 16 METHOD flat",
]
#: Session 0's trailing ingest burst — one group-committed batch.
BATCH = [(90, "x"), (91, "y"), (92, "z")]
BATCH_SQL = [_insert_statement_sql("t0", row) for row in BATCH]

#: Per-session scripts.  Sessions 2 and 3 contend on the shared table.
SCRIPTS = [
    [
        "INSERT INTO t0 VALUES (1, 'a')",
        "UPDATE t0 SET name = 'z' WHERE id = 1",
        "INSERT INTO t0 VALUES (2, 'b')",
    ],
    [
        "INSERT INTO t1 VALUES (10, 'c')",
        "INSERT INTO t1 VALUES (11, 'd')",
        "DELETE FROM t1 WHERE id = 10",
    ],
    [
        "INSERT INTO shared VALUES (20, 'e')",
        "INSERT INTO shared VALUES (21, 'f')",
        "UPDATE shared SET name = 'q' WHERE id = 20",
    ],
    [
        "INSERT INTO shared VALUES (30, 'g')",
        "DELETE FROM shared WHERE id = 30",
        "INSERT INTO shared VALUES (31, 'h')",
    ],
]
SESSIONS = len(SCRIPTS)


def _build(plan: FaultPlan) -> ObliDB:
    return ObliDB(cipher="null", wal=True, fault_plan=plan, retry=None)


def _run_workload(db: ObliDB) -> tuple[list[list[str]], bool]:
    """Run CREATEs then the four session scripts concurrently.

    Returns per-session acked statement lists (submission order) and
    whether the simulated kill fired anywhere.
    """
    server = ObliDBServer(db)
    acked: list[list[str]] = [[] for _ in range(SESSIONS + 1)]
    crashed = threading.Event()

    # DDL phase (main thread, still through the server's write queues).
    ddl = server.session("ddl")
    try:
        for statement in CREATES:
            ddl.execute(statement)
            acked[SESSIONS].append(statement)
    except SimulatedCrash:
        crashed.set()
        return acked, True

    def client(index: int) -> None:
        session = server.session(f"s{index}")
        try:
            for statement in SCRIPTS[index]:
                session.execute(statement)
                acked[index].append(statement)
            if index == 0:
                session.insert_many("t0", list(BATCH))
                acked[index].extend(BATCH_SQL)
        except (SimulatedCrash, ServerCrashed):
            crashed.set()

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(SESSIONS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "session hung"
    return acked, crashed.is_set() or server.crashed


def _total_accesses() -> int:
    db = _build(FaultPlan())
    acked, crashed = _run_workload(db)
    assert not crashed
    expected = len(CREATES) + sum(len(s) for s in SCRIPTS) + len(BATCH)
    assert db.wal.committed_count == expected
    return db.enclave.untrusted.accesses


def _is_subsequence(needle: list[str], haystack: list[str]) -> bool:
    it = iter(haystack)
    return all(any(item == x for x in it) for item in needle)


@pytest.mark.parametrize("mode", ["at", "after"])
def test_concurrent_crash_point_sweep(mode):
    total = _total_accesses()
    if os.environ.get("FAULT_SWEEP") == "1":
        stride = max(1, total // 20)
    else:
        stride = max(1, total // 60)
    saw_crash = False
    for k in range(0, total, stride):
        plan = FaultPlan()
        plan.crash_at(k) if mode == "at" else plan.crash_after(k)
        db = _build(plan)
        acked, crashed = _run_workload(db)
        saw_crash = saw_crash or crashed
        committed_statements, _ = db.wal.read_committed()
        committed = db.wal.committed_count
        assert committed == len(committed_statements)

        # Durability: everything any session saw acknowledged is in the
        # committed log, in that session's own submission order.
        for index, session_acked in enumerate(acked):
            assert _is_subsequence(session_acked, committed_statements), (
                f"k={k}: session {index} acked statements missing or "
                f"reordered in the committed log"
            )
        # Group commit is atomic: the ingest batch is all-in or all-out.
        batch_present = sum(
            1 for s in BATCH_SQL if s in committed_statements
        )
        assert batch_present in (0, len(BATCH)), (
            f"k={k}: group-committed batch split ({batch_present})"
        )

        # Recovery replays exactly the committed prefix.
        recovered = ObliDB(cipher="null")
        report = recovered.recover(db.wal)
        assert report.replayed == committed, f"k={k}"
        check = recovered.verify()
        assert check.ok, f"k={k}: {check.issues}"

        # The recovered state equals a sequential re-execution of the log
        # through a completely separate (non-recovery, non-serving) path.
        reference = ObliDB(cipher="null")
        for statement in committed_statements:
            reference.sql(statement)
        for create in CREATES:
            if create not in committed_statements:
                continue
            table = create.split()[2]
            assert sorted(
                recovered.sql(f"SELECT * FROM {table}").rows
            ) == sorted(reference.sql(f"SELECT * FROM {table}").rows), (
                f"k={k}: {table} diverged after recovery"
            )
    # The sweep grid must actually have produced kills (k=0 always kills).
    assert saw_crash


def test_crash_fences_subsequent_statements():
    """After the kill, every later statement on any session raises
    ServerCrashed — the front end never hands a half-dead engine out."""
    plan = FaultPlan()
    plan.crash_after(40)
    db = _build(plan)
    server = ObliDBServer(db)
    session = server.session()
    with pytest.raises((SimulatedCrash, ServerCrashed)):
        for statement in CREATES + SCRIPTS[0]:
            session.execute(statement)
    assert server.crashed
    with pytest.raises(ServerCrashed):
        session.execute("SELECT * FROM t0 WHERE id = 1")
    with pytest.raises(ServerCrashed):
        server.session("other").execute("INSERT INTO t0 VALUES (7, 'n')")
    assert server.stats.crashes == 1

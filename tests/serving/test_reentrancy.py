"""Regression tests for the re-entrancy hazards the serving layer exposed.

Before the serving front end, the engine had exactly one caller, so the
plan cache's LRU mutations and the table revision counter were unlocked.
These tests hammer both from many threads and pin the now-locked
invariants: no lost revision bumps, no LRU corruption, coherent counters,
and FIFO write ordering through the server's queues.
"""

from __future__ import annotations

import threading

import pytest

from repro import Enclave, ObliDB, ObliDBServer
from repro.engine.ast import QueryResult
from repro.engine.plan_cache import PlanCache
from repro.storage import Schema, int_column
from repro.storage.table import StorageMethod, Table

pytestmark = pytest.mark.serving


def _hammer(workers: int, fn) -> None:
    """Run ``fn(index)`` on ``workers`` threads with a start barrier."""
    barrier = threading.Barrier(workers)
    errors: list[BaseException] = []

    def body(index: int) -> None:
        barrier.wait()
        try:
            fn(index)
        except BaseException as error:  # pragma: no cover - diagnostic
            errors.append(error)

    threads = [
        threading.Thread(target=body, args=(index,)) for index in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors


class TestPlanCacheThreadSafety:
    def test_concurrent_store_respects_bound(self) -> None:
        """16 threads × 50 stores: the LRU never exceeds max_entries and
        the OrderedDict survives concurrent reordering."""
        cache = PlanCache(max_entries=8)

        def worker(index: int) -> None:
            for i in range(50):
                fingerprint = f"f{index}-{i % 12}"
                cache.store(
                    fingerprint, (("t", (1, 0)),), QueryResult(rows=[(i,)])
                )
                cache.lookup(fingerprint, (("t", (1, 0)),))

        _hammer(16, worker)
        assert len(cache) <= 8

    def test_hits_plus_misses_equals_lookups(self) -> None:
        """Counter coherence under contention: every lookup is counted
        exactly once as a hit or a miss (the unlocked version lost
        increments to read-modify-write races)."""
        cache = PlanCache(max_entries=64)
        epochs = (("t", (1, 0)),)
        for i in range(8):
            cache.store(f"f{i}", epochs, QueryResult(rows=[(i,)]))
        lookups_per_worker = 200

        def worker(index: int) -> None:
            for i in range(lookups_per_worker):
                # Every key alternates hit ("f0".."f7") and miss ("miss-*").
                if i % 2:
                    cache.lookup(f"f{i % 8}", epochs)
                else:
                    cache.lookup(f"miss-{index}-{i}", epochs)

        _hammer(8, worker)
        assert cache.hits + cache.misses == 8 * lookups_per_worker
        assert cache.hits == 8 * lookups_per_worker // 2

    def test_stale_epoch_eviction_races_with_store(self) -> None:
        """Lookups observing stale epochs delete entries while writers
        re-store them; no KeyError, no stale hit."""
        cache = PlanCache(max_entries=32)
        fresh = (("t", (1, 5)),)
        stale = (("t", (1, 4)),)

        def worker(index: int) -> None:
            for i in range(100):
                if index % 2:
                    cache.store("hot", fresh, QueryResult(rows=[(i,)]))
                else:
                    entry = cache.lookup("hot", stale)
                    assert entry is None  # stale epochs never hit

        _hammer(8, worker)

    def test_invalidate_races_with_lookup(self) -> None:
        cache = PlanCache(max_entries=32)

        class _FakePlan:
            cache_key = "k"
            tables = ("t",)

            @staticmethod
            def physical_plans():
                return []

        plan = _FakePlan()
        epochs = (("t", (1, 0)),)

        def worker(index: int) -> None:
            for i in range(100):
                if index % 2:
                    cache.store(
                        f"f{i % 4}",
                        epochs,
                        QueryResult(rows=[(i,)], plan=plan),
                    )
                    cache.invalidate_table("t")
                else:
                    cache.lookup(f"f{i % 4}", epochs)

        _hammer(8, worker)


class TestRevisionBumpThreadSafety:
    def test_no_lost_bumps(self) -> None:
        """T threads × K bumps land exactly T*K mutations (the unlocked
        counter lost increments under the GIL's eval-loop preemption)."""
        table = Table(
            Enclave(cipher="null"),
            "t",
            Schema([int_column("k")]),
            capacity=8,
            method=StorageMethod.FLAT,
        )
        workers, bumps = 16, 500
        base = table.revision[1]

        def worker(index: int) -> None:
            for _ in range(bumps):
                table.bump_revision()

        _hammer(workers, worker)
        assert table.revision[1] == base + workers * bumps


class TestWriteQueueFifo:
    def test_queued_writers_drain_in_arrival_order(self) -> None:
        """Writers that blocked behind a parked head leave the queue in
        arrival order — the ticket FIFO, not notify-wakeup luck."""
        db = ObliDB(cipher="null", seed=1)
        db.sql("CREATE TABLE t (k INT, v INT) CAPACITY 64")
        server = ObliDBServer(db)
        order: list[int] = []
        order_lock = threading.Lock()

        release = threading.Event()
        started = threading.Event()

        def head() -> None:
            session = server.session()
            statement_done = threading.Event()

            def hold(text: str, result) -> None:
                started.set()
                release.wait(10)
                statement_done.set()

            server.hooks.on_statement_executed = hold
            session.execute("INSERT INTO t VALUES (0, 0)")
            server.hooks.on_statement_executed = None
            with order_lock:
                order.append(0)

        def follower(index: int) -> None:
            session = server.session()
            session.execute(f"INSERT INTO t VALUES ({index}, 0)")
            with order_lock:
                order.append(index)

        head_thread = threading.Thread(target=head)
        head_thread.start()
        started.wait(10)
        followers = []
        for index in range(1, 6):
            thread = threading.Thread(target=follower, args=(index,))
            thread.start()
            # Wait until this follower is queued before starting the next,
            # so arrival order is deterministic.
            while server.write_queue_depths().get("t", 0) < index + 1:
                threading.Event().wait(0.001)
            followers.append(thread)
        release.set()
        head_thread.join(timeout=30)
        for thread in followers:
            thread.join(timeout=30)
        assert order == [0, 1, 2, 3, 4, 5]
        assert server.stats.write_queue_peak == 6

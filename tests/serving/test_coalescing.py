"""Serving front end: coalescing correctness and admission behaviour.

The contract under test: concurrent identical read statements coalesce
onto one in-flight execution, and every coalesced client receives rows
**bit-identical** to what sequential execution of its statement would have
returned.  Plus the admission-policy hooks (quotas, rejection, bounded
pagination) and the write queues' ordering guarantee.
"""

from __future__ import annotations

import threading

import pytest

from repro import AdmissionPolicy, ObliDB, ObliDBServer
from repro.serving import AdmissionError, ServerHooks

pytestmark = pytest.mark.serving

SCHEMA = "CREATE TABLE t (k INT, v INT, s STR(8)) CAPACITY 64 METHOD both KEY k"

#: A small hot-query pool: point, range, aggregate, join-free shapes.
QUERY_POOL = [
    "SELECT * FROM t WHERE k = 5",
    "SELECT * FROM t WHERE k >= 3 AND k <= 9",
    "SELECT COUNT(*), SUM(v) FROM t WHERE v < 500",
    "SELECT * FROM t WHERE k = 17",
]


def build_db(**kwargs) -> ObliDB:
    db = ObliDB(cipher="null", seed=1, allow_continuous=False, **kwargs)
    db.sql(SCHEMA)
    db.insert_many("t", [(k, (k * 37) % 1000, f"s{k}") for k in range(30)])
    return db


class TestCoalescedResultsBitIdentical:
    def test_forced_coalescing_returns_sequential_rows(self) -> None:
        """Leader parks until three followers join; all four answers equal
        the sequential execution, row for row, column for column."""
        db = build_db()
        oracle = {sql: db.sql(sql) for sql in QUERY_POOL}

        followers_joined = threading.Event()
        server = ObliDBServer(
            db,
            hooks=ServerHooks(
                on_leader_execute=lambda key: followers_joined.wait(5)
            ),
        )
        session = server.session()
        sql = QUERY_POOL[1]
        results: list = []
        errors: list = []

        def client() -> None:
            try:
                results.append(session.execute(sql))
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)

        leader = threading.Thread(target=client)
        leader.start()
        # Wait until the leader has registered its group, then pile on.
        deadline = threading.Event()
        for _ in range(100):
            if server.read_groups_in_flight() == 1:
                break
            deadline.wait(0.01)
        followers = [threading.Thread(target=client) for _ in range(3)]
        for thread in followers:
            thread.start()
        for _ in range(200):
            if server.stats.coalesced == 3:
                break
            deadline.wait(0.01)
        followers_joined.set()
        for thread in [leader, *followers]:
            thread.join(timeout=10)
        assert not errors
        assert len(results) == 4
        for result in results:
            assert result.rows == oracle[sql].rows
            assert result.column_names == oracle[sql].column_names
        assert server.stats.coalesced == 3
        assert server.stats.executed["read"] == 1

    def test_follower_result_is_a_private_copy(self) -> None:
        db = build_db()
        joined = threading.Event()
        server = ObliDBServer(
            db, hooks=ServerHooks(on_leader_execute=lambda key: joined.wait(5))
        )
        session = server.session()
        sql = QUERY_POOL[0]
        results: list = []

        def client() -> None:
            results.append(session.execute(sql))

        threads = [threading.Thread(target=client) for _ in range(2)]
        threads[0].start()
        while server.read_groups_in_flight() == 0:
            pass
        threads[1].start()
        while server.stats.coalesced < 1:
            pass
        joined.set()
        for thread in threads:
            thread.join(timeout=10)
        first, second = results
        assert first.rows == second.rows
        first.rows.append(("mutated",))
        assert first.rows != second.rows

    def test_open_loop_many_clients_match_oracle(self, schedule_rng) -> None:
        """Open-loop harness: 8 clients, randomized statement order and
        think time (drawn only from the pinned schedule RNG), every
        response checked against a sequential oracle."""
        db = build_db()
        oracle = {sql: db.sql(sql).rows for sql in QUERY_POOL}
        server = ObliDBServer(db)

        clients = 8
        per_client = 12
        schedules = [
            [
                (schedule_rng.choice(QUERY_POOL), schedule_rng.random() * 0.002)
                for _ in range(per_client)
            ]
            for _ in range(clients)
        ]
        failures: list[str] = []

        def client(index: int) -> None:
            session = server.session(tenant=f"tenant-{index % 2}")
            for sql, think in schedules[index]:
                result = session.execute(sql)
                if result.rows != oracle[sql]:
                    failures.append(f"client {index}: {sql!r} diverged")
                threading.Event().wait(think)

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        stats = server.stats.snapshot()
        assert stats["admitted"] == clients * per_client
        assert stats["rejected"] == 0
        # Conservation: every admitted read either executed or coalesced.
        assert (
            stats["executed"]["read"] + stats["coalesced"]
            == clients * per_client
        )

    def test_logically_equal_predicates_coalesce(self) -> None:
        """AND-commuted predicates share one admission key (the planner's
        normalization) and therefore one execution."""
        db = build_db()
        joined = threading.Event()
        server = ObliDBServer(
            db, hooks=ServerHooks(on_leader_execute=lambda key: joined.wait(5))
        )
        session = server.session()
        variants = [
            "SELECT * FROM t WHERE k >= 3 AND k <= 9",
            "SELECT * FROM t WHERE k <= 9 AND k >= 3",
        ]
        results: list = []

        def client(sql: str) -> None:
            results.append(session.execute(sql))

        first = threading.Thread(target=client, args=(variants[0],))
        first.start()
        while server.read_groups_in_flight() == 0:
            pass
        second = threading.Thread(target=client, args=(variants[1],))
        second.start()
        while server.stats.coalesced < 1:
            pass
        joined.set()
        first.join(timeout=10)
        second.join(timeout=10)
        assert server.stats.executed["read"] == 1
        assert results[0].rows == results[1].rows


class TestAdmissionPolicy:
    def test_max_in_flight_rejects(self) -> None:
        db = build_db()
        hold = threading.Event()
        server = ObliDBServer(
            db,
            policy=AdmissionPolicy(max_in_flight=1),
            hooks=ServerHooks(on_leader_execute=lambda key: hold.wait(5)),
        )
        session = server.session()
        started = threading.Event()

        def occupant() -> None:
            started.set()
            session.execute(QUERY_POOL[0])

        thread = threading.Thread(target=occupant)
        thread.start()
        started.wait(5)
        while server.read_groups_in_flight() == 0:
            pass
        with pytest.raises(AdmissionError):
            session.execute(QUERY_POOL[2])
        hold.set()
        thread.join(timeout=10)
        assert server.stats.rejected == 1
        # A rejected statement never reached the engine.
        assert server.stats.executed["read"] == 1

    def test_class_quota_is_per_class(self) -> None:
        db = build_db()
        hold = threading.Event()
        server = ObliDBServer(
            db,
            policy=AdmissionPolicy(class_quotas={"write": 1}),
            hooks=ServerHooks(on_leader_execute=lambda key: hold.wait(5)),
        )
        session = server.session()
        # Reads are not quota'd: park one in flight, reads still admitted.
        reader = threading.Thread(
            target=session.execute, args=(QUERY_POOL[0],)
        )
        reader.start()
        while server.read_groups_in_flight() == 0:
            pass
        session.execute("INSERT INTO t VALUES (40, 1, 'x')")  # write admitted
        hold.set()
        reader.join(timeout=10)

    def test_unknown_quota_class_rejected_at_construction(self) -> None:
        with pytest.raises(ValueError):
            AdmissionPolicy(class_quotas={"scan": 1})

    def test_tenants_are_isolated(self) -> None:
        db = build_db()
        hold = threading.Event()
        server = ObliDBServer(
            db,
            tenant_policies={"small": AdmissionPolicy(max_in_flight=1)},
            hooks=ServerHooks(on_leader_execute=lambda key: hold.wait(5)),
        )
        small = server.session("small")
        big = server.session("big")
        thread = threading.Thread(target=small.execute, args=(QUERY_POOL[0],))
        thread.start()
        while server.read_groups_in_flight() == 0:
            pass
        with pytest.raises(AdmissionError):
            small.execute(QUERY_POOL[2])
        # The other tenant coalesces onto the parked leader just fine.
        follower = threading.Thread(target=big.execute, args=(QUERY_POOL[0],))
        follower.start()
        while server.stats.coalesced < 1:
            pass
        hold.set()
        thread.join(timeout=10)
        follower.join(timeout=10)

    def test_bounded_pagination(self) -> None:
        db = build_db()
        server = ObliDBServer(db, policy=AdmissionPolicy(page_rows=5))
        session = server.session()
        sql = "SELECT * FROM t WHERE k >= 0 AND k <= 29"
        reference = db.sql(sql).rows
        page = session.execute_paged(sql)
        assert page.rows == reference[:5]
        assert page.total_rows == len(reference)
        assert page.has_more
        # Walk the pages; concatenation reconstructs the full result.
        rows, offset = [], 0
        while True:
            page = session.execute_paged(sql, offset=offset)
            rows.extend(page.rows)
            if not page.has_more:
                break
            offset += len(page.rows)
        assert rows == reference
        # Explicit page size overrides the policy default.
        assert len(session.execute_paged(sql, page_rows=2).rows) == 2


class TestWriteSerialization:
    def test_same_table_writes_apply_in_submission_order(self) -> None:
        """One session's writes to one table land in submission order —
        the per-table FIFO, not lock-acquisition luck, decides."""
        db = build_db(wal=True)
        server = ObliDBServer(db)
        session = server.session()
        for value in range(5):
            session.execute(f"UPDATE t SET v = {value} WHERE k = 1")
        statements, _ = db.wal.read_committed()
        updates = [s for s in statements if s.startswith("UPDATE")]
        assert updates == [
            f"UPDATE t SET v = {value} WHERE k = 1" for value in range(5)
        ]
        assert db.sql("SELECT v FROM t WHERE k = 1").rows == [(4,)]

    def test_concurrent_writers_different_tables_all_land(self) -> None:
        db = build_db()
        db.sql("CREATE TABLE u (k INT, v INT) CAPACITY 64")
        server = ObliDBServer(db)

        def writer(table: str, base: int) -> None:
            session = server.session()
            for i in range(8):
                values = f"{base + i}, {i}"
                if table == "t":
                    values += ", 'w'"
                session.execute(f"INSERT INTO {table} VALUES ({values})")

        threads = [
            threading.Thread(target=writer, args=("u", 100)),
            threading.Thread(target=writer, args=("u", 200)),
            threading.Thread(target=writer, args=("t", 300)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(db.sql("SELECT * FROM u WHERE k >= 100").rows) == 16
        assert len(db.sql("SELECT * FROM t WHERE k >= 300").rows) == 8
        assert server.stats.executed["write"] == 24
        # No lost revision bumps under concurrency: the engine bumps twice
        # per insert (operator level + executor level), so 16 inserts from
        # two racing writers must land exactly 32 mutations.
        assert db.table("u").revision[1] == 32


class TestBatchedLookups:
    def test_batched_point_lookups_return_correct_rows(self) -> None:
        db = build_db()
        oracle = {
            k: db.sql(f"SELECT * FROM t WHERE k = {k}").rows for k in range(8)
        }
        server = ObliDBServer(db, batch_window_s=0.005)
        results: dict[int, list] = {}

        def client(k: int) -> None:
            session = server.session()
            results[k] = session.execute(f"SELECT * FROM t WHERE k = {k}").rows

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        for k in range(8):
            assert results[k] == oracle[k], f"k={k}"
        stats = server.stats.snapshot()
        assert stats["batched_lookups"] + stats["coalesced"] == 8
        assert stats["batches"] >= 1

    def test_duplicate_lookups_in_window_deduplicate(self) -> None:
        db = build_db()
        server = ObliDBServer(db, batch_window_s=0.01)
        rows = []

        def client() -> None:
            rows.append(
                server.session().execute("SELECT * FROM t WHERE k = 7").rows
            )

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert all(r == rows[0] for r in rows)
        stats = server.stats.snapshot()
        # At least one window caught concurrent duplicates.
        assert stats["coalesced"] > 0
        assert stats["executed"]["read"] + stats["coalesced"] == 6


class TestAsyncFacade:
    def test_async_sessions_share_coalescing(self) -> None:
        import asyncio

        db = build_db()
        server = ObliDBServer(db, max_workers=4)
        oracle = db.sql(QUERY_POOL[0]).rows

        async def main() -> list:
            session = server.async_session()
            return await asyncio.gather(
                *(session.execute(QUERY_POOL[0]) for _ in range(6))
            )

        results = asyncio.run(main())
        assert all(result.rows == oracle for result in results)
        server.close()

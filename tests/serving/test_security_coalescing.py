"""Security: coalescing is invisible to the untrusted-memory adversary.

The serving layer's coalescing claim is a *security* claim before it is a
throughput claim: a follower that joins an in-flight group must add
**zero** adversary-visible untrusted accesses beyond the single leader
execution.  If following leaked anything — an extra probe, a re-read of
the result region, even a trace event count difference — the adversary
could distinguish "one client asked" from "five clients asked", which the
single-caller engine never reveals.

Method: build two identical databases.  On one, run the statement once,
sequentially.  On the other, run it through the server with one leader
(parked until followers join) and several followers.  Compare raw trace
event counts and canonicalized traces: they must be identical.
"""

from __future__ import annotations

import threading

import pytest

from repro import ObliDB, ObliDBServer
from repro.analysis import assert_indistinguishable, canonicalize, oram_regions_of
from repro.serving import ServerHooks

pytestmark = pytest.mark.serving

SCHEMA = "CREATE TABLE t (k INT, v INT, s STR(8)) CAPACITY 48 METHOD both KEY k"


def build_db() -> ObliDB:
    db = ObliDB(
        cipher="null", keep_trace_events=True, allow_continuous=False, seed=1
    )
    db.sql(SCHEMA)
    db.insert_many("t", [(k, (k * 13) % 997, f"s{k}") for k in range(30)])
    return db


def coalesced_trace(sql: str, followers: int) -> tuple[list, int]:
    """Trace of one leader + ``followers`` coalesced clients, plus the
    number of statements the engine actually executed."""
    db = build_db()
    joined = threading.Event()
    server = ObliDBServer(
        db, hooks=ServerHooks(on_leader_execute=lambda key: joined.wait(10))
    )
    session = server.session()
    db.enclave.trace.clear()
    errors: list[BaseException] = []

    def client() -> None:
        try:
            session.execute(sql)
        except BaseException as error:  # pragma: no cover - diagnostic
            errors.append(error)

    leader = threading.Thread(target=client)
    leader.start()
    while server.read_groups_in_flight() == 0:
        threading.Event().wait(0.001)
    threads = [threading.Thread(target=client) for _ in range(followers)]
    for thread in threads:
        thread.start()
    while server.stats.coalesced < followers:
        threading.Event().wait(0.001)
    joined.set()
    for thread in [leader, *threads]:
        thread.join(timeout=30)
    assert not errors
    events = list(db.enclave.trace.events)
    regions = oram_regions_of(db.enclave)
    return canonicalize(events, regions), server.stats.executed["read"]


def sequential_trace(sql: str) -> list:
    db = build_db()
    db.enclave.trace.clear()
    db.sql(sql)
    return canonicalize(db.enclave.trace.events, oram_regions_of(db.enclave))


class TestFollowersAddZeroAccesses:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM t WHERE k = 7",
            "SELECT * FROM t WHERE k >= 3 AND k <= 12",
            "SELECT COUNT(*), SUM(v) FROM t WHERE v < 500",
        ],
        ids=["point", "range", "aggregate"],
    )
    def test_coalesced_trace_identical_to_sequential(self, sql: str) -> None:
        """Leader + 4 followers emit exactly the trace of ONE sequential
        execution: same event count, same canonical form."""
        reference = sequential_trace(sql)
        trace, executions = coalesced_trace(sql, followers=4)
        assert executions == 1
        assert trace.length == reference.length
        assert_indistinguishable([trace, reference])

    def test_follower_count_does_not_change_trace(self) -> None:
        """1 follower vs 7 followers: bit-identical traces — the adversary
        cannot count clients behind a coalesced read."""
        sql = "SELECT * FROM t WHERE k >= 5 AND k <= 20"
        few, _ = coalesced_trace(sql, followers=1)
        many, _ = coalesced_trace(sql, followers=7)
        assert few.length == many.length
        assert_indistinguishable([few, many])

    def test_follower_result_fanout_touches_no_untrusted_memory(self) -> None:
        """The result hand-off itself (copying the leader's QueryResult to
        followers) happens entirely enclave-side: after the leader's
        execution completes, zero further trace events appear while the
        followers consume their copies."""
        db = build_db()
        joined = threading.Event()
        server = ObliDBServer(
            db, hooks=ServerHooks(on_leader_execute=lambda key: joined.wait(10))
        )
        session = server.session()
        sql = "SELECT * FROM t WHERE k >= 0 AND k <= 29"
        results: list = []

        def client() -> None:
            results.append(session.execute(sql))

        leader = threading.Thread(target=client)
        leader.start()
        while server.read_groups_in_flight() == 0:
            threading.Event().wait(0.001)
        followers = [threading.Thread(target=client) for _ in range(3)]
        for thread in followers:
            thread.start()
        while server.stats.coalesced < 3:
            threading.Event().wait(0.001)
        joined.set()
        leader.join(timeout=30)
        # Leader done: snapshot the trace, then let the followers finish.
        events_after_leader = len(db.enclave.trace.events)
        for thread in followers:
            thread.join(timeout=30)
        assert len(results) == 4
        assert len(db.enclave.trace.events) == events_after_leader


class TestBatchedLookupTraces:
    def test_batched_lookups_trace_equals_sequential_loop(self) -> None:
        """A micro-batched round of point lookups emits exactly the trace
        of the same lookups as a sequential loop (the ``insert_many``
        discipline: batching never changes the access sequence)."""
        keys = [2, 9, 21, 27]

        db_seq = build_db()
        db_seq.enclave.trace.clear()
        for k in keys:
            db_seq.sql(f"SELECT * FROM t WHERE k = {k}")
        reference = canonicalize(
            db_seq.enclave.trace.events, oram_regions_of(db_seq.enclave)
        )

        db = build_db()
        server = ObliDBServer(db, batch_window_s=0.02)
        db.enclave.trace.clear()
        results: dict[int, object] = {}

        def client(k: int) -> None:
            results[k] = server.session().execute(f"SELECT * FROM t WHERE k = {k}")

        threads = [threading.Thread(target=client, args=(k,)) for k in keys]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == len(keys)
        batched = canonicalize(
            db.enclave.trace.events, oram_regions_of(db.enclave)
        )
        assert batched.length == reference.length
        # Point lookups are padded to one fixed shape, so even the
        # (possibly reordered) batch is trace-identical to the loop.
        assert_indistinguishable([batched, reference])

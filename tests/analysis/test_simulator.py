"""Tests for the Appendix A simulator: SIM's trace must match real traces."""

from __future__ import annotations

import random

import pytest

from repro.analysis import SelectLeakage, real_select_trace, simulate_select
from repro.enclave import Enclave
from repro.operators import Comparison
from repro.planner import SelectAlgorithm, plan_select
from repro.storage import FlatStorage, Schema, int_column

SCHEMA = Schema([int_column("x"), int_column("payload")])
OM_BYTES = 1 << 14


def build(seed: int, capacity: int, matches: int, contiguous: bool) -> tuple[Enclave, FlatStorage]:
    enclave = Enclave(
        oblivious_memory_bytes=OM_BYTES, cipher="null", keep_trace_events=True
    )
    rng = random.Random(seed)
    if contiguous:
        start = rng.randrange(max(1, capacity - matches))
        positions = set(range(start, start + matches))
    else:
        positions = set(rng.sample(range(capacity), matches))
    table = FlatStorage(enclave, SCHEMA, capacity)
    for index in range(capacity):
        value = 1 if index in positions else rng.randrange(2, 99)
        table.fast_insert((value, rng.randrange(1000)))
    return enclave, table


PREDICATE = Comparison("x", "=", 1)


class TestSimulatorTheorem:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sim_matches_real_small(self, seed: int) -> None:
        enclave, table = build(seed, capacity=32, matches=5, contiguous=False)
        decision = plan_select(table, PREDICATE)
        assert decision.algorithm is SelectAlgorithm.SMALL
        real = real_select_trace(table, PREDICATE, decision)
        sim = simulate_select(
            SelectLeakage.from_decision(SCHEMA.row_size, decision), OM_BYTES
        )
        assert real.matches(sim)

    def test_sim_matches_real_large(self) -> None:
        enclave, table = build(4, capacity=32, matches=28, contiguous=False)
        decision = plan_select(table, PREDICATE, force=SelectAlgorithm.LARGE)
        real = real_select_trace(table, PREDICATE, decision)
        sim = simulate_select(
            SelectLeakage.from_decision(SCHEMA.row_size, decision), OM_BYTES
        )
        assert real.matches(sim)

    def test_sim_matches_real_continuous(self) -> None:
        enclave, table = build(5, capacity=32, matches=6, contiguous=True)
        decision = plan_select(table, PREDICATE, force=SelectAlgorithm.CONTINUOUS)
        real = real_select_trace(table, PREDICATE, decision)
        sim = simulate_select(
            SelectLeakage.from_decision(SCHEMA.row_size, decision), OM_BYTES
        )
        assert real.matches(sim)

    def test_sim_matches_real_hash(self) -> None:
        enclave, table = build(6, capacity=32, matches=5, contiguous=False)
        decision = plan_select(table, PREDICATE, force=SelectAlgorithm.HASH)
        real = real_select_trace(table, PREDICATE, decision)
        sim = simulate_select(
            SelectLeakage.from_decision(SCHEMA.row_size, decision), OM_BYTES
        )
        assert real.matches(sim)

    def test_sim_from_compiled_plan(self) -> None:
        """SIM consuming the reified IR: extract the selection leakage from
        a compiled QueryPlan and reproduce the real operator trace."""
        from repro import ObliDB

        db = ObliDB(
            cipher="null", oblivious_memory_bytes=OM_BYTES, keep_trace_events=True
        )
        db.sql("CREATE TABLE s (x INT, payload INT) CAPACITY 32")
        rng = random.Random(8)
        positions = set(rng.sample(range(32), 5))
        rows = [
            (1 if i in positions else rng.randrange(2, 99), rng.randrange(1000))
            for i in range(32)
        ]
        db.insert_many("s", rows)

        plan = db.explain("SELECT * FROM s WHERE x = 1")
        leakage = SelectLeakage.from_plan(db.table("s").schema.row_size, plan)
        assert leakage.output_size == 5

        flat = db.table("s").require_flat()
        decision = plan_select(flat, PREDICATE)
        assert decision.algorithm is leakage.algorithm
        real = real_select_trace(flat, PREDICATE, decision)
        sim = simulate_select(leakage, OM_BYTES)
        assert real.matches(sim)

    def test_sim_differs_when_leakage_differs(self) -> None:
        """SIM given different leakage must produce a different trace —
        otherwise the check would be vacuous."""
        enclave, table = build(7, capacity=32, matches=5, contiguous=False)
        decision = plan_select(table, PREDICATE)
        real = real_select_trace(table, PREDICATE, decision)
        wrong = SelectLeakage(
            input_capacity=32,
            output_size=9,  # wrong output size
            algorithm=decision.algorithm,
            buffer_rows=decision.buffer_rows,
            row_size=SCHEMA.row_size,
        )
        sim = simulate_select(wrong, OM_BYTES)
        assert not real.matches(sim)

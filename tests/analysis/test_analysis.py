"""Unit tests for the analysis utilities (canonical traces, asymptotics)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    CanonicalTrace,
    assert_indistinguishable,
    canonicalize,
    fit_polylog,
    fit_power_law,
)
from repro.enclave.trace import AccessEvent


def events(*tuples: tuple[str, str, int]) -> list[AccessEvent]:
    return [AccessEvent(*t) for t in tuples]


class TestCanonicalize:
    def test_identical_traces_match(self) -> None:
        a = canonicalize(events(("R", "t", 0), ("W", "t", 1)))
        b = canonicalize(events(("R", "t", 0), ("W", "t", 1)))
        assert a.matches(b)

    def test_different_flat_indexes_differ(self) -> None:
        a = canonicalize(events(("R", "t", 0)))
        b = canonicalize(events(("R", "t", 1)))
        assert not a.matches(b)

    def test_oram_indexes_canonicalised_by_level(self) -> None:
        """Two different paths through the same ORAM tree are equivalent."""
        # Heap indexes 1 and 2 are both level-1 buckets.
        a = canonicalize(events(("R", "oram#1", 0), ("R", "oram#1", 1)), {"oram#1"})
        b = canonicalize(events(("R", "oram#1", 0), ("R", "oram#1", 2)), {"oram#1"})
        assert a.matches(b)

    def test_oram_different_levels_differ(self) -> None:
        a = canonicalize(events(("R", "oram#1", 1)), {"oram#1"})
        b = canonicalize(events(("R", "oram#1", 3)), {"oram#1"})  # level 2
        assert not a.matches(b)

    def test_name_normalisation(self) -> None:
        """Same structure under different region names compares equal."""
        a = canonicalize(events(("R", "flat#5", 0), ("W", "flat#6", 0)))
        b = canonicalize(events(("R", "flat#1", 0), ("W", "flat#2", 0)))
        assert a.matches(b)

    def test_name_normalisation_detects_cross_references(self) -> None:
        a = canonicalize(events(("R", "x", 0), ("W", "x", 0)))
        b = canonicalize(events(("R", "x", 0), ("W", "y", 0)))
        assert not a.matches(b)

    def test_assert_indistinguishable(self) -> None:
        trace = canonicalize(events(("R", "t", 0)))
        assert_indistinguishable([trace, trace])
        other = canonicalize(events(("W", "t", 0)))
        with pytest.raises(AssertionError):
            assert_indistinguishable([trace, other])

    def test_empty_list_ok(self) -> None:
        assert_indistinguishable([])


class TestAsymptoticsFitting:
    def test_linear_fit(self) -> None:
        sizes = [100, 1000, 10_000, 100_000]
        costs = [2 * n for n in sizes]
        assert fit_power_law(sizes, costs) == pytest.approx(1.0, abs=0.01)

    def test_quadratic_fit(self) -> None:
        sizes = [10, 100, 1000]
        costs = [n * n for n in sizes]
        assert fit_power_law(sizes, costs) == pytest.approx(2.0, abs=0.01)

    def test_constant_fit(self) -> None:
        sizes = [10, 100, 1000]
        costs = [5.0, 5.0, 5.0]
        assert fit_power_law(sizes, costs) == pytest.approx(0.0, abs=0.01)

    def test_polylog_fit(self) -> None:
        sizes = [2**k for k in range(4, 20, 2)]
        costs = [math.log(n) ** 2 for n in sizes]
        assert fit_polylog(sizes, costs) == pytest.approx(2.0, abs=0.05)

    def test_too_few_points_rejected(self) -> None:
        with pytest.raises(ValueError):
            fit_power_law([10], [1.0])

    def test_identical_sizes_rejected(self) -> None:
        with pytest.raises(ValueError):
            fit_power_law([10, 10], [1.0, 2.0])

    def test_matches_helper(self) -> None:
        a = CanonicalTrace(digest="x", length=1)
        b = CanonicalTrace(digest="x", length=1)
        c = CanonicalTrace(digest="y", length=1)
        assert a.matches(b)
        assert not a.matches(c)

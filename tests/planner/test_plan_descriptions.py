"""Tests for physical-plan descriptions (the leakage surface's API)."""

from __future__ import annotations

from repro.planner import AccessMethod, JoinAlgorithm, PhysicalPlan, SelectAlgorithm


class TestPhysicalPlan:
    def test_describe_select(self) -> None:
        plan = PhysicalPlan(
            operator="select",
            access_method=AccessMethod.FLAT_SCAN,
            select_algorithm=SelectAlgorithm.SMALL,
            sizes={"input": 100, "output": 5},
        )
        text = plan.describe()
        assert "select" in text
        assert "small" in text
        assert "input=100" in text
        assert "output=5" in text

    def test_describe_join(self) -> None:
        plan = PhysicalPlan(
            operator="join",
            join_algorithm=JoinAlgorithm.OPAQUE,
            sizes={"t1": 10, "t2": 20},
        )
        text = plan.describe()
        assert "join" in text and "opaque" in text

    def test_describe_no_sizes(self) -> None:
        plan = PhysicalPlan(operator="aggregate")
        assert "aggregate" in plan.describe()
        assert "[" not in plan.describe()

    def test_plans_are_immutable_value_objects(self) -> None:
        a = PhysicalPlan(operator="select", sizes={"input": 1})
        b = PhysicalPlan(operator="select", sizes={"input": 1})
        assert a.operator == b.operator
        assert a.sizes == b.sizes

    def test_sizes_sorted_in_description(self) -> None:
        """Deterministic output regardless of dict insertion order."""
        a = PhysicalPlan(operator="x", sizes={"b": 2, "a": 1})
        b = PhysicalPlan(operator="x", sizes={"a": 1, "b": 2})
        assert a.describe() == b.describe()

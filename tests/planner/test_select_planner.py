"""Unit tests for the selection planner (Section 5 / Figure 13 behaviour)."""

from __future__ import annotations

import pytest

from repro.enclave import Enclave, PlannerError
from repro.operators import Comparison, Or
from repro.planner import SelectAlgorithm, execute_select, plan_select
from repro.storage import FlatStorage, Schema
from repro.workloads import shuffled, wide_rows


def load(enclave: Enclave, schema: Schema, rows: list) -> FlatStorage:
    table = FlatStorage(enclave, schema, len(rows))
    for row in rows:
        table.fast_insert(row)
    return table


@pytest.fixture
def ordered_table(fast_enclave: Enclave, wide_schema: Schema) -> FlatStorage:
    return load(fast_enclave, wide_schema, wide_rows(200))


@pytest.fixture
def shuffled_table(fast_enclave: Enclave, wide_schema: Schema) -> FlatStorage:
    return load(fast_enclave, wide_schema, shuffled(wide_rows(200)))


class TestAlgorithmChoice:
    def test_large_for_high_selectivity(self, wide_schema: Schema) -> None:
        """With modest oblivious memory (Small needs many passes), a
        95%-selectivity query should copy-and-clear (Large)."""
        enclave = Enclave(oblivious_memory_bytes=2048, cipher="null")
        table = load(enclave, wide_schema, shuffled(wide_rows(200)))
        decision = plan_select(table, Comparison("id", ">=", 10))
        assert decision.algorithm is SelectAlgorithm.LARGE

    def test_small_wins_high_selectivity_with_big_buffer(
        self, ordered_table: FlatStorage
    ) -> None:
        """With oblivious memory to hold the whole output, one Small pass
        (N + R accesses) undercuts Large's two full passes."""
        decision = plan_select(ordered_table, Comparison("id", ">=", 10))
        assert decision.algorithm is SelectAlgorithm.SMALL

    def test_continuous_for_contiguous_segment(self, wide_schema: Schema) -> None:
        """When the buffer is tiny, the one-pass Continuous algorithm beats
        multi-pass Small on a contiguous result."""
        enclave = Enclave(oblivious_memory_bytes=150, cipher="null")
        table = load(enclave, wide_schema, wide_rows(200))
        decision = plan_select(table, Comparison("id", "<", 10))
        assert decision.algorithm is SelectAlgorithm.CONTINUOUS

    def test_continuous_disabled_falls_back(self, ordered_table: FlatStorage) -> None:
        decision = plan_select(
            ordered_table, Comparison("id", "<", 10), allow_continuous=False
        )
        assert decision.algorithm in (SelectAlgorithm.SMALL, SelectAlgorithm.HASH)

    def test_small_for_scattered_low_selectivity(self, shuffled_table: FlatStorage) -> None:
        decision = plan_select(shuffled_table, Comparison("id", "<", 10))
        assert decision.algorithm is SelectAlgorithm.SMALL

    def test_hash_when_buffer_too_small(self, wide_schema: Schema) -> None:
        """With almost no oblivious memory, Small would need too many
        passes; Hash wins."""
        tiny = Enclave(oblivious_memory_bytes=64, cipher="null")
        table = load(tiny, wide_schema, shuffled(wide_rows(200)))
        decision = plan_select(table, Comparison("id", "<", 50))
        assert decision.algorithm is SelectAlgorithm.HASH

    def test_empty_result_uses_hash(self, ordered_table: FlatStorage) -> None:
        decision = plan_select(ordered_table, Comparison("id", "=", -1))
        assert decision.algorithm is SelectAlgorithm.HASH

    def test_force_overrides(self, ordered_table: FlatStorage) -> None:
        decision = plan_select(
            ordered_table,
            Comparison("id", "<", 10),
            force=SelectAlgorithm.NAIVE,
        )
        assert decision.algorithm is SelectAlgorithm.NAIVE

    def test_plan_records_leaked_sizes(self, ordered_table: FlatStorage) -> None:
        decision = plan_select(ordered_table, Comparison("id", "<", 10))
        assert decision.plan.sizes["input"] == 200
        assert decision.plan.sizes["output"] == 10


class TestExecuteSelect:
    @pytest.mark.parametrize(
        "force",
        [
            SelectAlgorithm.SMALL,
            SelectAlgorithm.LARGE,
            SelectAlgorithm.HASH,
            SelectAlgorithm.NAIVE,
            SelectAlgorithm.CONTINUOUS,
        ],
    )
    def test_all_algorithms_agree(
        self, ordered_table: FlatStorage, force: SelectAlgorithm
    ) -> None:
        predicate = Comparison("id", "<", 12)
        decision = plan_select(ordered_table, predicate, force=force)
        output = execute_select(ordered_table, predicate, decision)
        assert sorted(row[0] for row in output.rows()) == list(range(12))
        output.free()

    def test_forced_continuous_on_scattered_rejected(
        self, shuffled_table: FlatStorage
    ) -> None:
        predicate = Or(Comparison("id", "=", 0), Comparison("id", "=", 150))
        decision = plan_select(
            shuffled_table, predicate, force=SelectAlgorithm.CONTINUOUS
        )
        with pytest.raises(PlannerError):
            execute_select(shuffled_table, predicate, decision)

    def test_planner_beats_hash_on_planned_queries(
        self, ordered_table: FlatStorage, fast_enclave: Enclave
    ) -> None:
        """The Figure 13 claim: the planner's pick outperforms the general
        Hash algorithm."""
        predicate = Comparison("id", ">=", 10)  # 95% selectivity
        decision = plan_select(ordered_table, predicate)
        before = fast_enclave.cost.block_ios
        execute_select(ordered_table, predicate, decision)
        planned_cost = fast_enclave.cost.block_ios - before

        forced = plan_select(ordered_table, predicate, force=SelectAlgorithm.HASH)
        before = fast_enclave.cost.block_ios
        execute_select(ordered_table, predicate, forced)
        hash_cost = fast_enclave.cost.block_ios - before
        assert planned_cost * 2 < hash_cost

"""Unit tests for the join planner."""

from __future__ import annotations

import pytest

from repro.enclave import Enclave
from repro.planner import (
    JoinAlgorithm,
    estimate_join_costs,
    execute_join,
    plan_join,
)
from repro.storage import FlatStorage, Schema, int_column


def load(enclave: Enclave, capacity: int, rows: int, key_mod: int) -> FlatStorage:
    schema = Schema([int_column("k"), int_column("v")])
    table = FlatStorage(enclave, schema, capacity)
    for i in range(rows):
        table.fast_insert((i % key_mod, i))
    return table


class TestCostModel:
    def test_hash_wins_with_big_memory(self) -> None:
        costs = estimate_join_costs(1000, 1000, oblivious_rows=2000)
        assert costs[JoinAlgorithm.HASH] == min(costs.values())

    def test_opaque_beats_zero_om(self) -> None:
        """With any oblivious memory the Opaque join dominates 0-OM."""
        costs = estimate_join_costs(5000, 5000, oblivious_rows=500)
        assert costs[JoinAlgorithm.OPAQUE] < costs[JoinAlgorithm.ZERO_OM]

    def test_sort_merge_wins_for_large_tables_small_memory(self) -> None:
        costs = estimate_join_costs(20_000, 20_000, oblivious_rows=50)
        assert costs[JoinAlgorithm.OPAQUE] < costs[JoinAlgorithm.HASH]


class TestPlanJoin:
    def test_hash_when_t1_fits(self, fast_enclave: Enclave) -> None:
        left = load(fast_enclave, 16, 10, 10)
        right = load(fast_enclave, 32, 20, 10)
        decision = plan_join(left, right)
        assert decision.algorithm is JoinAlgorithm.HASH

    def test_zero_om_when_no_memory(self, kv_schema) -> None:
        enclave = Enclave(oblivious_memory_bytes=0, cipher="null")
        left = load(enclave, 8, 4, 4)
        right = load(enclave, 8, 4, 4)
        decision = plan_join(left, right)
        assert decision.algorithm is JoinAlgorithm.ZERO_OM

    def test_force(self, fast_enclave: Enclave) -> None:
        left = load(fast_enclave, 8, 4, 4)
        right = load(fast_enclave, 8, 4, 4)
        decision = plan_join(left, right, force=JoinAlgorithm.OPAQUE)
        assert decision.algorithm is JoinAlgorithm.OPAQUE

    def test_plan_reads_no_data(self, fast_enclave: Enclave) -> None:
        """Join planning uses only recorded sizes: zero block accesses."""
        left = load(fast_enclave, 8, 4, 4)
        right = load(fast_enclave, 8, 4, 4)
        before = fast_enclave.cost.block_ios
        plan_join(left, right)
        assert fast_enclave.cost.block_ios == before

    @pytest.mark.parametrize(
        "force",
        [JoinAlgorithm.HASH, JoinAlgorithm.OPAQUE, JoinAlgorithm.ZERO_OM],
    )
    def test_execute_all_algorithms(self, fast_enclave: Enclave, force: JoinAlgorithm) -> None:
        left = load(fast_enclave, 8, 6, 6)
        right = load(fast_enclave, 16, 12, 6)
        decision = plan_join(left, right, force=force)
        out = execute_join(left, right, "k", "k", decision)
        # Every right row matches exactly one left row.
        assert len(out.rows()) == 12
        out.free()

"""Unit tests for the planner's statistics pass."""

from __future__ import annotations

import pytest

from repro.enclave import Enclave
from repro.operators import Comparison, TruePredicate
from repro.planner import scan_statistics
from repro.storage import FlatStorage, Schema


@pytest.fixture
def table(fast_enclave: Enclave, kv_schema: Schema) -> FlatStorage:
    table = FlatStorage(fast_enclave, kv_schema, 24)
    for key in range(20):
        table.fast_insert((key, f"v{key}"))
    return table


class TestScanStatistics:
    def test_match_count(self, table: FlatStorage) -> None:
        stats = scan_statistics(table, Comparison("key", "<", 5))
        assert stats.matching_rows == 5
        assert stats.input_capacity == 24

    def test_continuous_prefix(self, table: FlatStorage) -> None:
        stats = scan_statistics(table, Comparison("key", "<", 5))
        assert stats.continuous
        assert stats.first_match_index == 0

    def test_continuous_middle(self, table: FlatStorage) -> None:
        from repro.operators import And

        predicate = And(Comparison("key", ">=", 5), Comparison("key", "<", 9))
        stats = scan_statistics(table, predicate)
        assert stats.continuous
        assert stats.first_match_index == 5
        assert stats.matching_rows == 4

    def test_non_continuous(self, table: FlatStorage) -> None:
        from repro.operators import Or

        predicate = Or(Comparison("key", "=", 2), Comparison("key", "=", 9))
        stats = scan_statistics(table, predicate)
        assert not stats.continuous
        assert stats.matching_rows == 2

    def test_no_matches(self, table: FlatStorage) -> None:
        stats = scan_statistics(table, Comparison("key", "=", -1))
        assert stats.matching_rows == 0
        assert not stats.continuous
        assert stats.first_match_index == -1

    def test_dummies_do_not_break_continuity(
        self, fast_enclave: Enclave, kv_schema: Schema
    ) -> None:
        """A deleted row between matches is invisible to the adversary's
        notion of adjacency (the scan skips unused blocks)."""
        table = FlatStorage(fast_enclave, kv_schema, 8)
        for key in range(6):
            table.fast_insert((key, "x"))
        table.delete(lambda row: row[0] == 2)
        stats = scan_statistics(table, Comparison("key", "<", 5))
        assert stats.continuous

    def test_selectivity(self, table: FlatStorage) -> None:
        stats = scan_statistics(table, TruePredicate())
        assert stats.matching_rows == 20
        assert stats.selectivity == pytest.approx(20 / 24)

    def test_scan_reads_every_block_once(
        self, table: FlatStorage, fast_enclave: Enclave
    ) -> None:
        before = fast_enclave.cost.untrusted_reads
        scan_statistics(table, Comparison("key", "=", 3))
        assert fast_enclave.cost.untrusted_reads - before == table.capacity

    def test_scan_makes_no_writes(self, table: FlatStorage, fast_enclave: Enclave) -> None:
        before = fast_enclave.cost.untrusted_writes
        scan_statistics(table, Comparison("key", "=", 3))
        assert fast_enclave.cost.untrusted_writes == before

"""Tests for the compiled physical-plan IR and the planner cost-model
boundaries.

Two families:

* **Plan snapshots** — the quickstart queries compile to *stable* plans:
  same database state ⇒ same ``QueryPlan`` (bit-identical ``cache_key``
  and rendered tree).  The snapshots pin the compiler's decisions so an
  accidental planning change shows up as a diff, not silently as a new
  leakage profile.

* **Cost-model boundaries** — threshold-bracketing cases on both sides of
  every switch: the Small algorithm's multi-pass ↔ compaction-front
  switch, the hash-vs-continuous (adjacency) and small-vs-hash
  crossovers, and the hash-vs-opaque / zero-OM join crossovers.
"""

from __future__ import annotations

import pytest

from repro import ObliDB, Comparison
from repro.enclave import Enclave
from repro.oblivious.compact import compaction_levels
from repro.operators import select as select_ops
from repro.planner import (
    CompactNode,
    IndexLookupNode,
    JoinAlgorithm,
    JoinNode,
    ScanNode,
    SelectAlgorithm,
    SelectNode,
    SortNode,
    estimate_join_costs,
    plan_join,
    plan_select,
)
from repro.storage import FlatStorage, Schema, int_column
from repro.storage.rows import framed_size


# ----------------------------------------------------------------------
# Plan snapshots for the quickstart queries
# ----------------------------------------------------------------------
QUICKSTART_QUERIES = [
    "SELECT * FROM employees WHERE id = 4",
    "SELECT name, salary FROM employees WHERE id >= 2 AND id <= 5 AND dept = 'eng'",
    "SELECT COUNT(*), AVG(salary) FROM employees WHERE dept = 'eng'",
    "SELECT dept, SUM(salary) FROM employees GROUP BY dept",
    "SELECT name FROM employees WHERE salary > 1100 ORDER BY salary DESC LIMIT 3",
]


@pytest.fixture
def quickstart_db() -> ObliDB:
    db = ObliDB(cipher="null", seed=7, oblivious_memory_bytes=1 << 20)
    db.sql(
        "CREATE TABLE employees (id INT, name STR(16), dept STR(8), salary INT)"
        " CAPACITY 128 METHOD both KEY id"
    )
    people = [
        (1, "ada", "eng", 1200),
        (2, "grace", "eng", 1400),
        (3, "edsger", "research", 1100),
        (4, "barbara", "eng", 1500),
        (5, "donald", "research", 1300),
        (6, "leslie", "ops", 1000),
    ]
    db.insert_many("employees", people)
    return db


class TestPlanSnapshots:
    def test_quickstart_plans_are_stable(self, quickstart_db: ObliDB) -> None:
        """Compiling twice (and against an identically built database)
        yields bit-identical plans — the determinism the result cache and
        the Appendix-A checker rely on."""
        first = [quickstart_db.explain(sql) for sql in QUICKSTART_QUERIES]
        second = [quickstart_db.explain(sql) for sql in QUICKSTART_QUERIES]
        for a, b in zip(first, second):
            assert a.cache_key == b.cache_key
            assert a.describe() == b.describe()
            assert a.to_dict() == b.to_dict()

    def test_point_query_plan_shape(self, quickstart_db: ObliDB) -> None:
        plan = quickstart_db.explain(QUICKSTART_QUERIES[0])
        lookup = plan.find(IndexLookupNode)
        assert isinstance(lookup, IndexLookupNode)
        assert lookup.segment_rows == 1
        select = plan.find(SelectNode)
        assert isinstance(select, SelectNode)
        assert select.algorithm is not None
        assert select.output_rows == 1

    def test_range_query_uses_index_segment(self, quickstart_db: ObliDB) -> None:
        plan = quickstart_db.explain(QUICKSTART_QUERIES[1])
        lookup = plan.find(IndexLookupNode)
        assert isinstance(lookup, IndexLookupNode)
        assert lookup.segment_rows == 4  # ids 2..5

    def test_aggregate_plan_is_fused(self, quickstart_db: ObliDB) -> None:
        plan = quickstart_db.explain(QUICKSTART_QUERIES[2])
        assert plan.root.kind == "aggregate"
        assert plan.find(SelectNode) is None  # no intermediate selection

    def test_group_by_plan(self, quickstart_db: ObliDB) -> None:
        plan = quickstart_db.explain(QUICKSTART_QUERIES[3])
        assert plan.root.kind == "group_by"
        assert plan.root.output_rows is None  # observed at run, not planned

    def test_order_by_plan_has_sort_decision(self, quickstart_db: ObliDB) -> None:
        plan = quickstart_db.explain(QUICKSTART_QUERIES[4])
        sort = plan.find(SortNode)
        assert isinstance(sort, SortNode)
        assert sort.in_enclave is True  # 3 matching rows easily fit 1 MiB
        assert plan.limit == 3

    def test_executed_plan_matches_compiled_plan(self, quickstart_db: ObliDB) -> None:
        for sql in QUICKSTART_QUERIES:
            compiled = quickstart_db.explain(sql)
            executed = quickstart_db.sql(sql)
            assert executed.plan is not None
            if executed.plan.root.kind == "group_by":
                # The observed group count is recorded into the final plan.
                assert executed.plan.root.output_rows is not None
                continue
            assert executed.plan.cache_key == compiled.cache_key
            assert executed.plans == executed.plan.physical_plans()

    def test_describe_renders_one_line_per_node(self, quickstart_db: ObliDB) -> None:
        plan = quickstart_db.explain(QUICKSTART_QUERIES[4])
        lines = plan.describe().splitlines()
        nodes = sum(1 for _ in plan.root.walk())
        assert len(lines) == nodes + 1  # header + one line per node

    def test_cache_key_sensitive_to_sizes(self, quickstart_db: ObliDB) -> None:
        """Different leaked sizes must produce different plan identities."""
        narrow = quickstart_db.explain("SELECT * FROM employees WHERE id = 4")
        wide = quickstart_db.explain(
            "SELECT * FROM employees WHERE id >= 2 AND id <= 5"
        )
        assert narrow.cache_key != wide.cache_key


class TestScanSourceDecisions:
    def test_flat_scan_when_no_index_interval(self, quickstart_db: ObliDB) -> None:
        plan = quickstart_db.explain("SELECT * FROM employees WHERE salary = 1200")
        scan = plan.find(ScanNode)
        assert isinstance(scan, ScanNode)
        assert scan.access_method.value == "flat_scan"

    def test_index_linear_fallback_for_index_only_table(self) -> None:
        db = ObliDB(cipher="null", seed=9)
        db.sql(
            "CREATE TABLE ix (k INT, v INT) CAPACITY 16 METHOD indexed KEY k"
        )
        for i in range(4):
            db.sql(f"INSERT INTO ix VALUES ({i}, {i * 2})")
        plan = db.explain("SELECT * FROM ix WHERE v = 4")
        scan = plan.find(ScanNode)
        assert isinstance(scan, ScanNode)
        assert scan.access_method.value == "index_linear"
        result = db.sql("SELECT * FROM ix WHERE v = 4")
        assert result.rows == [(2, 4)]


# ----------------------------------------------------------------------
# Cost-model boundaries
# ----------------------------------------------------------------------
SCHEMA = Schema([int_column("id"), int_column("payload")])


def build_table(
    capacity: int,
    matches: int,
    contiguous: bool,
    oblivious_memory_bytes: int,
) -> FlatStorage:
    """A table whose first/scattered ``matches`` rows satisfy ``id < 0``."""
    enclave = Enclave(
        oblivious_memory_bytes=oblivious_memory_bytes, cipher="null"
    )
    table = FlatStorage(enclave, SCHEMA, capacity)
    if contiguous:
        positions = set(range(matches))
    else:
        positions = {(i * 3) % capacity for i in range(matches)}
        while len(positions) < matches:  # collisions when 3 | capacity
            positions.add(len(positions))
    rows = [
        (-1 if index in positions else index + 1, index)
        for index in range(capacity)
    ]
    table.fast_insert_many(rows)
    return table


def om_bytes_for_buffer(buffer_rows: int) -> int:
    """An OM budget that yields exactly ``buffer_rows`` Small-buffer rows."""
    row_bytes = framed_size(SCHEMA)
    # plan_select: buffer = max(1, int((free // row_bytes) * 0.8))
    return int(buffer_rows / 0.8 + 1) * row_bytes


PREDICATE = Comparison("id", "<", 0)


class TestSelectCrossover:
    def test_adjacency_flips_hash_to_continuous(self) -> None:
        """Same sizes, same (tiny) buffer: scattered matches pick Hash,
        adjacent matches pick Continuous — the only difference is the
        leaked adjacency bit."""
        scattered = build_table(64, 22, contiguous=False, oblivious_memory_bytes=8)
        adjacent = build_table(64, 22, contiguous=True, oblivious_memory_bytes=8)
        assert (
            plan_select(scattered, PREDICATE).algorithm is SelectAlgorithm.HASH
        )
        assert (
            plan_select(adjacent, PREDICATE).algorithm
            is SelectAlgorithm.CONTINUOUS
        )

    def test_continuous_disabled_falls_back(self) -> None:
        adjacent = build_table(64, 22, contiguous=True, oblivious_memory_bytes=8)
        decision = plan_select(adjacent, PREDICATE, allow_continuous=False)
        assert decision.algorithm is SelectAlgorithm.HASH

    def test_small_vs_hash_crossover_bracketed(self) -> None:
        """With a 1-row buffer the Small cost is N·R + R versus Hash's
        21·N: at N=64 the crossover sits between R=20 and R=22."""
        below = build_table(64, 20, contiguous=False, oblivious_memory_bytes=8)
        above = build_table(64, 22, contiguous=False, oblivious_memory_bytes=8)
        assert plan_select(below, PREDICATE).algorithm is SelectAlgorithm.SMALL
        assert plan_select(above, PREDICATE).algorithm is SelectAlgorithm.HASH

    def test_large_threshold_bracketed(self) -> None:
        """Selectivity ≥ 0.5 admits Large (4·N), which then beats a
        1-row-buffer Small; just below the threshold Large is ineligible."""
        at = build_table(64, 32, contiguous=False, oblivious_memory_bytes=8)
        under = build_table(64, 31, contiguous=False, oblivious_memory_bytes=8)
        assert plan_select(at, PREDICATE).algorithm is SelectAlgorithm.LARGE
        assert plan_select(under, PREDICATE).algorithm is not SelectAlgorithm.LARGE

    def test_big_buffer_prefers_small(self) -> None:
        """One pass of Small (N + R) beats every alternative when the
        whole output fits the buffer."""
        table = build_table(
            64, 22, contiguous=True, oblivious_memory_bytes=1 << 20
        )
        assert plan_select(table, PREDICATE).algorithm is SelectAlgorithm.SMALL


class TestSmallCompactSwitch:
    """The multi-pass ↔ compaction-front switch inside small_select.

    The operator switches to the compaction front when the pass count
    exceeds ``3 + 3·ceil(log2 N)`` — both sides bracketed here, with a
    monkeypatched probe observing which implementation ran.
    """

    def _run(self, monkeypatch, capacity: int, matches: int, buffer_rows: int) -> bool:
        table = build_table(
            capacity, matches, contiguous=False, oblivious_memory_bytes=1 << 20
        )
        called = []
        original = select_ops.compact_select
        monkeypatch.setattr(
            select_ops,
            "compact_select",
            lambda *args, **kwargs: called.append(True) or original(*args, **kwargs),
        )
        output = select_ops.small_select(table, PREDICATE, matches, buffer_rows)
        assert sorted(row[1] for row in output.rows()) == sorted(
            row[1] for row in table.rows() if row[0] < 0
        )
        output.free()
        return bool(called)

    def test_pass_count_above_threshold_switches(self, monkeypatch) -> None:
        capacity = 32
        threshold = 3 + 3 * compaction_levels(capacity)
        matches = threshold + 1  # 1-row buffer ⇒ passes == matches
        assert self._run(monkeypatch, capacity, matches, buffer_rows=1)

    def test_pass_count_at_threshold_stays_multipass(self, monkeypatch) -> None:
        capacity = 32
        threshold = 3 + 3 * compaction_levels(capacity)
        matches = threshold  # passes == threshold: not strictly greater
        assert not self._run(monkeypatch, capacity, matches, buffer_rows=1)


class TestJoinCrossover:
    def _tables(self, n1: int, n2: int, oblivious_memory_bytes: int):
        enclave = Enclave(
            oblivious_memory_bytes=oblivious_memory_bytes, cipher="null"
        )
        return (
            FlatStorage(enclave, SCHEMA, n1),
            FlatStorage(enclave, SCHEMA, n2),
        )

    def test_hash_when_om_holds_t1(self) -> None:
        left, right = self._tables(64, 64, oblivious_memory_bytes=1 << 20)
        assert plan_join(left, right).algorithm is JoinAlgorithm.HASH

    def test_zero_om_when_no_oblivious_memory(self) -> None:
        left, right = self._tables(64, 64, oblivious_memory_bytes=16)
        assert plan_join(left, right).algorithm is JoinAlgorithm.ZERO_OM

    def test_hash_opaque_crossover_bracketed(self) -> None:
        """At |T1| = |T2| = 1024 the cost curves cross between 4 and 16
        oblivious rows: chunked re-reads of T2 sink the hash join first."""
        n = 1024
        row_bytes = framed_size(SCHEMA) + 16
        costs_low = estimate_join_costs(n, n, oblivious_rows=4)
        costs_high = estimate_join_costs(n, n, oblivious_rows=16)
        assert costs_low[JoinAlgorithm.OPAQUE] < costs_low[JoinAlgorithm.HASH]
        assert costs_high[JoinAlgorithm.HASH] < costs_high[JoinAlgorithm.OPAQUE]

        left, right = self._tables(n, n, oblivious_memory_bytes=4 * row_bytes)
        assert plan_join(left, right).algorithm is JoinAlgorithm.OPAQUE
        left, right = self._tables(n, n, oblivious_memory_bytes=16 * row_bytes)
        assert plan_join(left, right).algorithm is JoinAlgorithm.HASH

    def test_join_node_records_cost_model_inputs(self) -> None:
        """The compiled JoinNode carries exactly the sizes the cost model
        consumed — the join's whole leakage."""
        db = ObliDB(cipher="null", seed=11)
        db.sql("CREATE TABLE a (k INT, x INT) CAPACITY 32")
        db.sql("CREATE TABLE b (k INT, y INT) CAPACITY 8")
        plan = db.explain("SELECT * FROM a JOIN b ON a.k = b.k")
        join = plan.find(JoinNode)
        assert isinstance(join, JoinNode)
        assert (join.t1, join.t2) == (32, 8)
        assert join.oblivious_rows >= 1

    def test_join_compact_only_under_order_by(self) -> None:
        db = ObliDB(cipher="null", seed=12)
        db.sql("CREATE TABLE a (k INT, x INT) CAPACITY 16")
        db.sql("CREATE TABLE b (k INT, y INT) CAPACITY 4")
        bare = db.explain("SELECT * FROM a JOIN b ON a.k = b.k")
        ordered = db.explain("SELECT * FROM a JOIN b ON a.k = b.k ORDER BY x")
        def compacted_join(plan):
            return any(
                isinstance(node, CompactNode) and isinstance(node.source, JoinNode)
                for node in plan.root.walk()
            )
        assert not compacted_join(bare)
        assert compacted_join(ordered)

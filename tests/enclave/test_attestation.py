"""Unit tests for the attestation handshake."""

from __future__ import annotations

import pytest

from repro.enclave import (
    AttestationError,
    AttestationPlatform,
    AttestingClient,
    attest,
    measure,
)

CODE = "oblidb-engine-v1"


class TestAttestation:
    def test_successful_handshake(self) -> None:
        platform = AttestationPlatform()
        client = AttestingClient(platform, expected_code_identity=CODE)
        attest(platform, CODE, client)  # must not raise

    def test_corrupted_code_rejected(self) -> None:
        platform = AttestationPlatform()
        client = AttestingClient(platform, expected_code_identity=CODE)
        with pytest.raises(AttestationError, match="measurement"):
            attest(platform, "oblidb-engine-evil", client)

    def test_replayed_quote_rejected(self) -> None:
        """A quote answering an old challenge must not satisfy a new one."""
        platform = AttestationPlatform()
        client = AttestingClient(platform, expected_code_identity=CODE)
        challenge = client.challenge()
        quote = platform.sign_quote(measure(CODE), challenge)
        client.verify(quote)
        client.challenge()  # new session
        with pytest.raises(AttestationError, match="challenge"):
            client.verify(quote)

    def test_forged_signature_rejected(self) -> None:
        platform = AttestationPlatform(b"a" * 32)
        rogue = AttestationPlatform(b"b" * 32)
        client = AttestingClient(platform, expected_code_identity=CODE)
        challenge = client.challenge()
        quote = rogue.sign_quote(measure(CODE), challenge)
        with pytest.raises(AttestationError, match="signature"):
            client.verify(quote)

    def test_verify_without_challenge_rejected(self) -> None:
        platform = AttestationPlatform()
        client = AttestingClient(platform, expected_code_identity=CODE)
        quote = platform.sign_quote(measure(CODE), b"nonce")
        with pytest.raises(AttestationError):
            client.verify(quote)

    def test_measurement_deterministic(self) -> None:
        assert measure(CODE) == measure(CODE)
        assert measure(CODE) != measure(CODE + "x")

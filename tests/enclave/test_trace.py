"""Unit tests for access traces and their digests."""

from __future__ import annotations

import pytest

from repro.enclave import AccessTrace


class TestAccessTrace:
    def test_record_and_iterate(self) -> None:
        trace = AccessTrace()
        trace.record("R", "t", 0)
        trace.record("W", "t", 1)
        assert len(trace) == 2
        assert [(e.op, e.index) for e in trace] == [("R", 0), ("W", 1)]

    def test_identical_sequences_match(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        for trace in (a, b):
            trace.record("R", "t", 3)
            trace.record("W", "u", 5)
        assert a.matches(b)
        assert a.digest() == b.digest()

    def test_different_order_differs(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        a.record("R", "t", 0)
        a.record("R", "t", 1)
        b.record("R", "t", 1)
        b.record("R", "t", 0)
        assert not a.matches(b)

    def test_op_direction_is_observable(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        a.record("R", "t", 0)
        b.record("W", "t", 0)
        assert not a.matches(b)

    def test_region_is_observable(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        a.record("R", "t1", 0)
        b.record("R", "t2", 0)
        assert not a.matches(b)

    def test_length_mismatch_never_matches(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        a.record("R", "t", 0)
        assert not a.matches(b)

    def test_clear_resets(self) -> None:
        trace = AccessTrace()
        trace.record("R", "t", 0)
        trace.clear()
        assert len(trace) == 0
        assert trace.matches(AccessTrace())

    def test_digest_only_mode(self) -> None:
        trace = AccessTrace(keep_events=False)
        trace.record("R", "t", 0)
        assert len(trace) == 1
        with pytest.raises(ValueError):
            trace.events
        reference = AccessTrace()
        reference.record("R", "t", 0)
        assert trace.matches(reference)

    def test_region_histogram(self) -> None:
        trace = AccessTrace()
        for _ in range(3):
            trace.record("R", "a", 0)
        trace.record("W", "b", 0)
        assert trace.region_histogram() == {"a": 3, "b": 1}


class TestGatherRecording:
    def test_record_at_is_digest_identical_to_loop(self) -> None:
        indices = [0, 2, 5, 12, 3, 3]
        batched, reference = AccessTrace(), AccessTrace()
        batched.record_at("R", "oram#1", indices)
        for i in indices:
            reference.record("R", "oram#1", i)
        assert batched.matches(reference)
        assert [(e.op, e.index) for e in batched.events] == [
            ("R", i) for i in indices
        ]

    def test_record_at_preserves_arbitrary_order(self) -> None:
        """Leaf→root scatter order must not hash like root→leaf gather."""
        a, b = AccessTrace(), AccessTrace()
        a.record_at("W", "t", [4, 1, 0])
        b.record_at("W", "t", [0, 1, 4])
        assert not a.matches(b)

    def test_record_at_empty_is_noop(self) -> None:
        trace = AccessTrace()
        trace.record_at("R", "t", [])
        assert len(trace) == 0
        assert trace.matches(AccessTrace())

    def test_record_at_digest_only_mode(self) -> None:
        trace = AccessTrace(keep_events=False)
        trace.record_at("W", "t", [3, 1])
        reference = AccessTrace()
        reference.record("W", "t", 3)
        reference.record("W", "t", 1)
        assert trace.matches(reference)

"""Unit tests for access traces and their digests."""

from __future__ import annotations

import pytest

from repro.enclave import AccessTrace


class TestAccessTrace:
    def test_record_and_iterate(self) -> None:
        trace = AccessTrace()
        trace.record("R", "t", 0)
        trace.record("W", "t", 1)
        assert len(trace) == 2
        assert [(e.op, e.index) for e in trace] == [("R", 0), ("W", 1)]

    def test_identical_sequences_match(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        for trace in (a, b):
            trace.record("R", "t", 3)
            trace.record("W", "u", 5)
        assert a.matches(b)
        assert a.digest() == b.digest()

    def test_different_order_differs(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        a.record("R", "t", 0)
        a.record("R", "t", 1)
        b.record("R", "t", 1)
        b.record("R", "t", 0)
        assert not a.matches(b)

    def test_op_direction_is_observable(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        a.record("R", "t", 0)
        b.record("W", "t", 0)
        assert not a.matches(b)

    def test_region_is_observable(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        a.record("R", "t1", 0)
        b.record("R", "t2", 0)
        assert not a.matches(b)

    def test_length_mismatch_never_matches(self) -> None:
        a, b = AccessTrace(), AccessTrace()
        a.record("R", "t", 0)
        assert not a.matches(b)

    def test_clear_resets(self) -> None:
        trace = AccessTrace()
        trace.record("R", "t", 0)
        trace.clear()
        assert len(trace) == 0
        assert trace.matches(AccessTrace())

    def test_digest_only_mode(self) -> None:
        trace = AccessTrace(keep_events=False)
        trace.record("R", "t", 0)
        assert len(trace) == 1
        with pytest.raises(ValueError):
            trace.events
        reference = AccessTrace()
        reference.record("R", "t", 0)
        assert trace.matches(reference)

    def test_region_histogram(self) -> None:
        trace = AccessTrace()
        for _ in range(3):
            trace.record("R", "a", 0)
        trace.record("W", "b", 0)
        assert trace.region_histogram() == {"a": 3, "b": 1}

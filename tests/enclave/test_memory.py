"""Unit tests for untrusted memory regions and access recording."""

from __future__ import annotations

import pytest

from repro.enclave import Enclave, StorageError


@pytest.fixture
def enclave() -> Enclave:
    return Enclave(keep_trace_events=True)


class TestRegions:
    def test_allocate_and_rw(self, enclave: Enclave) -> None:
        enclave.untrusted.allocate_region("t", 4)
        sealed = enclave.seal(b"abc")
        enclave.untrusted.write("t", 2, sealed)
        assert enclave.untrusted.read("t", 2) is sealed
        assert enclave.untrusted.read("t", 0) is None

    def test_duplicate_region_rejected(self, enclave: Enclave) -> None:
        enclave.untrusted.allocate_region("t", 1)
        with pytest.raises(StorageError):
            enclave.untrusted.allocate_region("t", 1)

    def test_missing_region_rejected(self, enclave: Enclave) -> None:
        with pytest.raises(StorageError):
            enclave.untrusted.read("ghost", 0)

    def test_out_of_bounds_read(self, enclave: Enclave) -> None:
        enclave.untrusted.allocate_region("t", 2)
        with pytest.raises(StorageError):
            enclave.untrusted.read("t", 2)
        with pytest.raises(StorageError):
            enclave.untrusted.read("t", -1)

    def test_out_of_bounds_write(self, enclave: Enclave) -> None:
        enclave.untrusted.allocate_region("t", 2)
        with pytest.raises(StorageError):
            enclave.untrusted.write("t", 5, enclave.seal(b"x"))

    def test_free_region(self, enclave: Enclave) -> None:
        enclave.untrusted.allocate_region("t", 2)
        enclave.untrusted.free_region("t")
        assert not enclave.untrusted.has_region("t")
        with pytest.raises(StorageError):
            enclave.untrusted.free_region("t")

    def test_resize_grow_and_shrink(self, enclave: Enclave) -> None:
        region = enclave.untrusted.allocate_region("t", 2)
        sealed = enclave.seal(b"x")
        enclave.untrusted.write("t", 1, sealed)
        region.resize(5)
        assert region.capacity == 5
        assert enclave.untrusted.read("t", 1) is sealed
        region.resize(1)
        assert region.capacity == 1


class TestAccessRecording:
    def test_reads_and_writes_are_traced(self, enclave: Enclave) -> None:
        enclave.untrusted.allocate_region("t", 4)
        enclave.untrusted.write("t", 0, enclave.seal(b"x"))
        enclave.untrusted.read("t", 0)
        events = enclave.trace.events
        assert [(e.op, e.region, e.index) for e in events] == [
            ("W", "t", 0),
            ("R", "t", 0),
        ]

    def test_costs_are_counted(self, enclave: Enclave) -> None:
        enclave.untrusted.allocate_region("t", 4)
        for i in range(3):
            enclave.untrusted.write("t", i, enclave.seal(b"x"))
        enclave.untrusted.read("t", 0)
        assert enclave.cost.untrusted_writes == 3
        assert enclave.cost.untrusted_reads == 1

    def test_peek_and_tamper_are_not_traced(self, enclave: Enclave) -> None:
        """The adversary's own inspections must not pollute the trace."""
        enclave.untrusted.allocate_region("t", 1)
        enclave.untrusted.write("t", 0, enclave.seal(b"x"))
        before = len(enclave.trace)
        enclave.untrusted.peek("t", 0)
        enclave.untrusted.tamper("t", 0, None)
        assert len(enclave.trace) == before

    def test_stored_bytes_accounting(self, enclave: Enclave) -> None:
        enclave.untrusted.allocate_region("t", 4)
        assert enclave.untrusted.total_stored_bytes() == 0
        enclave.untrusted.write("t", 0, enclave.seal(b"x" * 100))
        assert enclave.untrusted.total_stored_bytes() > 100

"""Unit tests for the authenticated encryption layer."""

from __future__ import annotations

import pytest

from repro.enclave import AuthenticatedCipher, IntegrityError, NullCipher
from repro.enclave.crypto import SealedBlock


class TestAuthenticatedCipher:
    def test_roundtrip(self) -> None:
        cipher = AuthenticatedCipher(b"k" * 32)
        sealed = cipher.seal(b"hello world")
        assert cipher.open(sealed) == b"hello world"

    def test_roundtrip_empty_plaintext(self) -> None:
        cipher = AuthenticatedCipher(b"k" * 32)
        assert cipher.open(cipher.seal(b"")) == b""

    def test_associated_data_roundtrip(self) -> None:
        cipher = AuthenticatedCipher(b"k" * 32)
        sealed = cipher.seal(b"payload", b"row:7:rev:3")
        assert cipher.open(sealed, b"row:7:rev:3") == b"payload"

    def test_ciphertext_randomised_per_seal(self) -> None:
        """Re-encrypting the same plaintext must give a fresh ciphertext —
        this is what makes dummy writes indistinguishable from real ones."""
        cipher = AuthenticatedCipher(b"k" * 32)
        a = cipher.seal(b"same")
        b = cipher.seal(b"same")
        assert a.ciphertext != b.ciphertext or a.nonce != b.nonce

    def test_ciphertext_not_plaintext(self) -> None:
        cipher = AuthenticatedCipher(b"k" * 32)
        sealed = cipher.seal(b"secret-row-data")
        assert b"secret-row-data" not in sealed.ciphertext

    def test_tampered_ciphertext_rejected(self) -> None:
        cipher = AuthenticatedCipher(b"k" * 32)
        sealed = cipher.seal(b"payload")
        corrupted = SealedBlock(
            nonce=sealed.nonce,
            ciphertext=bytes([sealed.ciphertext[0] ^ 1]) + sealed.ciphertext[1:],
            mac=sealed.mac,
        )
        with pytest.raises(IntegrityError):
            cipher.open(corrupted)

    def test_tampered_mac_rejected(self) -> None:
        cipher = AuthenticatedCipher(b"k" * 32)
        sealed = cipher.seal(b"payload")
        corrupted = SealedBlock(
            nonce=sealed.nonce,
            ciphertext=sealed.ciphertext,
            mac=bytes([sealed.mac[0] ^ 1]) + sealed.mac[1:],
        )
        with pytest.raises(IntegrityError):
            cipher.open(corrupted)

    def test_wrong_associated_data_rejected(self) -> None:
        """A block moved to a different slot must fail verification — the
        defence against shuffling attacks."""
        cipher = AuthenticatedCipher(b"k" * 32)
        sealed = cipher.seal(b"payload", b"slot:1")
        with pytest.raises(IntegrityError):
            cipher.open(sealed, b"slot:2")

    def test_different_keys_reject_each_other(self) -> None:
        sealed = AuthenticatedCipher(b"a" * 32).seal(b"payload")
        with pytest.raises(IntegrityError):
            AuthenticatedCipher(b"b" * 32).open(sealed)

    def test_short_key_rejected(self) -> None:
        with pytest.raises(ValueError):
            AuthenticatedCipher(b"short")

    def test_random_key_by_default(self) -> None:
        a, b = AuthenticatedCipher(), AuthenticatedCipher()
        sealed = a.seal(b"x")
        with pytest.raises(IntegrityError):
            b.open(sealed)

    def test_large_payload(self) -> None:
        cipher = AuthenticatedCipher(b"k" * 32)
        payload = bytes(range(256)) * 64
        assert cipher.open(cipher.seal(payload)) == payload


class TestNullCipher:
    def test_roundtrip(self) -> None:
        cipher = NullCipher()
        assert cipher.open(cipher.seal(b"data", b"aad"), b"aad") == b"data"

    def test_detects_tampering(self) -> None:
        cipher = NullCipher()
        sealed = cipher.seal(b"data")
        corrupted = SealedBlock(nonce=b"", ciphertext=b"datb", mac=sealed.mac)
        with pytest.raises(IntegrityError):
            cipher.open(corrupted)

    def test_detects_wrong_associated_data(self) -> None:
        cipher = NullCipher()
        sealed = cipher.seal(b"data", b"slot:1")
        with pytest.raises(IntegrityError):
            cipher.open(sealed, b"slot:2")

"""Round-trip and batch-API tests for the vectorized cipher layer.

The keystream rewrite (one-shot generation, integer-wide XOR, precomputed
keyed hash states) and the ``seal_many``/``open_many`` batch APIs must be
behaviourally identical to the scalar per-byte definitions: every length
round-trips, associated data still binds, and any tampered component still
raises :class:`IntegrityError`.
"""

from __future__ import annotations

import pytest

from repro.enclave import AuthenticatedCipher, IntegrityError, NullCipher
from repro.enclave.crypto import SealedBlock, _keystream

#: Lengths crossing every keystream-chunk boundary: empty, single byte, just
#: below/at/above one 64-byte BLAKE2b chunk, multi-chunk, and a large
#: non-multiple-of-64 tail.
LENGTHS = [0, 1, 2, 26, 63, 64, 65, 127, 128, 129, 1000]


def patterned(length: int) -> bytes:
    return bytes(i * 37 % 256 for i in range(length))


class TestKeystream:
    def test_prefix_property_within_each_regime(self) -> None:
        """The keystream is prefix-consistent per nonce within a regime
        (single keyed-BLAKE2b block up to 64 bytes, SHAKE-256 XOF beyond)."""
        key, nonce = b"k" * 32, b"n" * 12
        small = _keystream(key, nonce, 64)
        for length in [n for n in LENGTHS if 0 < n <= 64]:
            assert _keystream(key, nonce, length) == small[:length]
        large = _keystream(key, nonce, 1000)
        for length in [n for n in LENGTHS if n > 64]:
            assert _keystream(key, nonce, length) == large[:length]

    def test_zero_length(self) -> None:
        assert _keystream(b"k" * 32, b"n" * 12, 0) == b""

    def test_distinct_nonces_distinct_streams(self) -> None:
        key = b"k" * 32
        assert _keystream(key, b"a" * 12, 64) != _keystream(key, b"b" * 12, 64)
        assert _keystream(key, b"a" * 12, 200) != _keystream(key, b"b" * 12, 200)


@pytest.mark.parametrize("cipher_factory", [
    lambda: AuthenticatedCipher(b"k" * 32),
    NullCipher,
], ids=["authenticated", "null"])
class TestRoundTrip:
    @pytest.mark.parametrize("length", LENGTHS)
    def test_roundtrip_every_length(self, cipher_factory, length: int) -> None:
        cipher = cipher_factory()
        plaintext = patterned(length)
        sealed = cipher.seal(plaintext, b"aad")
        assert cipher.open(sealed, b"aad") == plaintext

    def test_roundtrip_empty_aad(self, cipher_factory) -> None:
        cipher = cipher_factory()
        assert cipher.open(cipher.seal(b"payload")) == b"payload"

    def test_wrong_aad_rejected(self, cipher_factory) -> None:
        cipher = cipher_factory()
        sealed = cipher.seal(b"payload", b"row:1")
        with pytest.raises(IntegrityError):
            cipher.open(sealed, b"row:2")

    @pytest.mark.parametrize("length", [1, 26, 64, 129])
    def test_tampered_ciphertext_rejected(self, cipher_factory, length: int) -> None:
        cipher = cipher_factory()
        sealed = cipher.seal(patterned(length), b"aad")
        corrupted = SealedBlock(
            nonce=sealed.nonce,
            ciphertext=bytes([sealed.ciphertext[0] ^ 1]) + sealed.ciphertext[1:],
            mac=sealed.mac,
        )
        with pytest.raises(IntegrityError):
            cipher.open(corrupted, b"aad")

    def test_tampered_mac_rejected(self, cipher_factory) -> None:
        cipher = cipher_factory()
        sealed = cipher.seal(b"payload", b"aad")
        corrupted = SealedBlock(
            nonce=sealed.nonce,
            ciphertext=sealed.ciphertext,
            mac=bytes([sealed.mac[0] ^ 1]) + sealed.mac[1:],
        )
        with pytest.raises(IntegrityError):
            cipher.open(corrupted, b"aad")

    def test_batch_roundtrip(self, cipher_factory) -> None:
        cipher = cipher_factory()
        plaintexts = [patterned(length) for length in LENGTHS]
        aads = [f"slot:{i}".encode() for i in range(len(plaintexts))]
        sealed = cipher.seal_many(plaintexts, aads)
        assert cipher.open_many(sealed, aads) == plaintexts

    def test_batch_binds_aad_per_block(self, cipher_factory) -> None:
        cipher = cipher_factory()
        sealed = cipher.seal_many([b"a", b"b"], [b"aad0", b"aad1"])
        with pytest.raises(IntegrityError):
            cipher.open_many(sealed, [b"aad1", b"aad0"])  # swapped

    def test_batch_and_scalar_interoperate(self, cipher_factory) -> None:
        """Blocks sealed scalar open batched and vice versa."""
        cipher = cipher_factory()
        scalar = cipher.seal(b"payload", b"aad")
        assert cipher.open_many([scalar], [b"aad"]) == [b"payload"]
        [batched] = cipher.seal_many([b"payload"], [b"aad"])
        assert cipher.open(batched, b"aad") == b"payload"

    def test_batch_length_mismatch_rejected(self, cipher_factory) -> None:
        cipher = cipher_factory()
        with pytest.raises(ValueError):
            cipher.seal_many([b"a", b"b"], [b"aad"])
        sealed = cipher.seal_many([b"a"], [b"aad"])
        with pytest.raises(ValueError):
            cipher.open_many(sealed, [])

    def test_empty_batch(self, cipher_factory) -> None:
        cipher = cipher_factory()
        assert cipher.seal_many([], []) == []
        assert cipher.open_many([], []) == []


class TestAuthenticatedProperties:
    def test_tampered_nonce_rejected(self) -> None:
        cipher = AuthenticatedCipher(b"k" * 32)
        sealed = cipher.seal(b"payload", b"aad")
        corrupted = SealedBlock(
            nonce=bytes([sealed.nonce[0] ^ 1]) + sealed.nonce[1:],
            ciphertext=sealed.ciphertext,
            mac=sealed.mac,
        )
        with pytest.raises(IntegrityError):
            cipher.open(corrupted, b"aad")

    def test_batch_ciphertexts_randomised(self) -> None:
        """Equal plaintexts in one batch must still produce fresh nonces and
        distinct ciphertexts (dummy-write indistinguishability)."""
        cipher = AuthenticatedCipher(b"k" * 32)
        a, b = cipher.seal_many([b"same", b"same"], [b"aad", b"aad"])
        assert a.nonce != b.nonce
        assert a.ciphertext != b.ciphertext

    def test_multichunk_xor_is_consistent(self) -> None:
        """Vectorized XOR must equal the definitional per-byte XOR."""
        cipher = AuthenticatedCipher(b"k" * 32)
        plaintext = patterned(129)
        sealed = cipher.seal(plaintext, b"")
        stream = _keystream(
            cipher._enc_key, sealed.nonce, len(plaintext)
        )
        expected = bytes(p ^ s for p, s in zip(plaintext, stream))
        assert sealed.ciphertext == expected

"""Unit tests for enclave lifecycle, oblivious memory, and cost counters."""

from __future__ import annotations

import pytest

from repro.enclave import (
    CostModel,
    CostWeights,
    Enclave,
    ObliviousMemoryAccount,
    ObliviousMemoryError,
)


class TestObliviousMemory:
    def test_allocate_within_budget(self) -> None:
        account = ObliviousMemoryAccount(100)
        account.allocate(60)
        assert account.in_use_bytes == 60
        assert account.free_bytes == 40

    def test_budget_enforced(self) -> None:
        account = ObliviousMemoryAccount(100)
        account.allocate(80)
        with pytest.raises(ObliviousMemoryError):
            account.allocate(30)

    def test_peak_tracking(self) -> None:
        account = ObliviousMemoryAccount(100)
        account.allocate(70)
        account.release(50)
        account.allocate(10)
        assert account.peak_bytes == 70
        assert account.in_use_bytes == 30

    def test_over_release_rejected(self) -> None:
        account = ObliviousMemoryAccount(100)
        account.allocate(10)
        with pytest.raises(ValueError):
            account.release(20)

    def test_enclave_buffer_context(self) -> None:
        enclave = Enclave(oblivious_memory_bytes=100)
        with enclave.oblivious_buffer(90):
            assert enclave.oblivious.in_use_bytes == 90
            with pytest.raises(ObliviousMemoryError):
                enclave.oblivious.allocate(20)
        assert enclave.oblivious.in_use_bytes == 0

    def test_buffer_released_on_exception(self) -> None:
        enclave = Enclave(oblivious_memory_bytes=100)
        with pytest.raises(RuntimeError):
            with enclave.oblivious_buffer(50):
                raise RuntimeError("boom")
        assert enclave.oblivious.in_use_bytes == 0


class TestCostModel:
    def test_modeled_time_uses_weights(self) -> None:
        cost = CostModel(weights=CostWeights(untrusted_read_us=2.0))
        cost.record_read(10)
        assert cost.modeled_time_us() == pytest.approx(20.0)

    def test_snapshot_delta(self) -> None:
        cost = CostModel()
        cost.record_read(5)
        snapshot = cost.snapshot()
        cost.record_read(3)
        cost.record_write(2)
        delta = cost.delta_since(snapshot)
        assert delta.untrusted_reads == 3
        assert delta.untrusted_writes == 2

    def test_block_ios(self) -> None:
        cost = CostModel()
        cost.record_read(4)
        cost.record_write(6)
        assert cost.block_ios == 10

    def test_reset(self) -> None:
        cost = CostModel()
        cost.record_oram_access(7)
        cost.reset()
        assert cost.oram_accesses == 0


class TestEnclave:
    def test_seal_open_roundtrip(self) -> None:
        enclave = Enclave()
        assert enclave.open(enclave.seal(b"data", b"aad"), b"aad") == b"data"

    def test_null_cipher_option(self) -> None:
        enclave = Enclave(cipher="null")
        assert enclave.open(enclave.seal(b"data")) == b"data"

    def test_unknown_cipher_rejected(self) -> None:
        with pytest.raises(ValueError):
            Enclave(cipher="rot13")

    def test_fresh_region_names_unique(self) -> None:
        enclave = Enclave()
        names = {enclave.fresh_region_name("t") for _ in range(100)}
        assert len(names) == 100

    def test_cost_snapshot_helpers(self) -> None:
        enclave = Enclave()
        snapshot = enclave.cost_snapshot()
        enclave.untrusted.allocate_region("t", 1)
        enclave.untrusted.write("t", 0, enclave.seal(b"x"))
        delta = enclave.cost_delta(snapshot)
        assert delta.untrusted_writes == 1

#!/usr/bin/env python3
"""Web analytics on an oblivious engine: the Big Data Benchmark workload.

Reproduces the paper's Section 7.1 scenario at laptop scale: the RANKINGS
and USERVISITS tables of the AMPLab Big Data Benchmark, with queries Q1-Q3
(filter, grouped aggregation, join), run on

* ObliDB with flat storage only (comparable to Opaque),
* ObliDB with an index on pageRank (the 19x Q1 winner), and
* the simulated Opaque and no-security baselines,

printing modeled time per system per query — a miniature Figure 7.

Run:  python examples/web_analytics.py
"""

from repro import ObliDB, StorageMethod
from repro.baselines import OpaqueSystem, PlainSystem
from repro.operators import AggregateFunction, AggregateSpec, Comparison
from repro.workloads import (
    Q1_SQL,
    Q2_SQL,
    Q3_SQL,
    RANKINGS_SCHEMA,
    USERVISITS_SCHEMA,
    generate,
)

ROWS = 800


def build_oblidb(data, method: StorageMethod) -> ObliDB:
    db = ObliDB(cipher="null", allow_continuous=False, seed=4)
    key = "pageRank" if method is not StorageMethod.FLAT else None
    db.create_table("rankings", RANKINGS_SCHEMA, ROWS, method=method, key_column=key)
    db.create_table("uservisits", USERVISITS_SCHEMA, ROWS)
    rankings = db.table("rankings")
    for row in data.rankings:
        rankings.insert(row, fast=rankings.flat is not None)
    uservisits = db.table("uservisits")
    for row in data.uservisits:
        uservisits.insert(row, fast=True)
    return db


def main() -> None:
    data = generate(rankings_rows=ROWS, uservisits_rows=ROWS, seed=99)
    print(f"generated {ROWS} rankings + {ROWS} uservisits rows\n")

    timings: dict[str, dict[str, float]] = {}

    for label, method in (
        ("oblidb-flat", StorageMethod.FLAT),
        ("oblidb-indexed", StorageMethod.BOTH),
    ):
        db = build_oblidb(data, method)
        timings[label] = {}
        for name, sql in (("Q1", Q1_SQL), ("Q2", Q2_SQL), ("Q3", Q3_SQL)):
            snapshot = db.cost_snapshot()
            result = db.sql(sql)
            timings[label][name] = db.cost_delta(snapshot).modeled_time_ms()
            if label == "oblidb-flat":
                print(f"{name}: {len(result.rows)} result rows; "
                      f"plan = {[plan.describe() for plan in result.plans]}")

    opaque = OpaqueSystem(oblivious_memory_bytes=1 << 21, cipher="null")
    opaque.create_table("rankings", RANKINGS_SCHEMA, ROWS)
    opaque.create_table("uservisits", USERVISITS_SCHEMA, ROWS)
    opaque.load_rows("rankings", data.rankings)
    opaque.load_rows("uservisits", data.uservisits)
    specs = [AggregateSpec(AggregateFunction.SUM, "adRevenue")]
    timings["opaque"] = {}
    for name, run in (
        ("Q1", lambda: opaque.filter("rankings", Comparison("pageRank", ">", 1000)).free()),
        ("Q2", lambda: opaque.group_by("uservisits", "ipPrefix", specs).free()),
        ("Q3", lambda: opaque.join("rankings", "uservisits", "pageURL", "destURL").free()),
    ):
        snapshot = opaque.enclave.cost.snapshot()
        run()
        timings["opaque"][name] = opaque.enclave.cost.delta_since(
            snapshot
        ).modeled_time_ms()

    plain = PlainSystem()
    plain.create_table("rankings", RANKINGS_SCHEMA)
    plain.create_table("uservisits", USERVISITS_SCHEMA)
    plain.load_rows("rankings", data.rankings)
    plain.load_rows("uservisits", data.uservisits)
    timings["spark-like"] = {}
    for name, run in (
        ("Q1", lambda: plain.filter("rankings", Comparison("pageRank", ">", 1000))),
        ("Q2", lambda: plain.group_by("uservisits", "ipPrefix", specs)),
        ("Q3", lambda: plain.join("rankings", "uservisits", "pageURL", "destURL")),
    ):
        snapshot = plain.cost.snapshot()
        run()
        timings["spark-like"][name] = plain.cost.delta_since(snapshot).modeled_time_ms()

    print("\nmodeled time (ms) — a miniature Figure 7:")
    print(f"{'system':<16}{'Q1':>8}{'Q2':>8}{'Q3':>8}")
    for system in ("opaque", "oblidb-flat", "oblidb-indexed", "spark-like"):
        row = timings[system]
        print(f"{system:<16}{row['Q1']:>8.2f}{row['Q2']:>8.2f}{row['Q3']:>8.2f}")
    q1_speedup = timings["opaque"]["Q1"] / timings["oblidb-indexed"]["Q1"]
    print(f"\nindexed ObliDB beats Opaque on Q1 by {q1_speedup:.1f}x "
          f"(paper: 19x at 180x this scale)")


if __name__ == "__main__":
    main()

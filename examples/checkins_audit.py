#!/usr/bin/env python3
"""The paper's motivating scenario: an outsourced check-in log.

Section 4.1 of the paper opens with a table ``Checkins`` that logs when
employees enter or exit an office building, and the query::

    SELECT * FROM Checkins WHERE uid=3172 AND date>'2018-01-01'

On a conventional encrypted database, an attacker controlling the cloud
OS watches which blocks the query touches and learns exactly *when user
3172 entered the building* — without ever decrypting a byte.  This example
stages that attack against a deliberately non-oblivious scan, shows the
leak, then runs the same query through ObliDB and shows the trace is
independent of both the user queried and the data stored.

Run:  python examples/checkins_audit.py
"""

import random

from repro import ObliDB
from repro.analysis import canonicalize, oram_regions_of

EMPLOYEES = [3172, 4401, 5222, 6837]
DATES_2017 = [f"2017-{m:02d}-{d:02d}" for m in range(1, 13) for d in (3, 17)]
DATES_2018 = [f"2018-{m:02d}-{d:02d}" for m in range(1, 13) for d in (5, 21)]


def build_db(seed: int) -> ObliDB:
    """A checkins table with a different random log per seed."""
    db = ObliDB(cipher="null", keep_trace_events=True, seed=seed)
    db.sql(
        "CREATE TABLE checkins (uid INT, date STR(10), door INT)"
        " CAPACITY 128 METHOD both KEY uid"
    )
    rng = random.Random(seed)
    for _ in range(96):
        uid = rng.choice(EMPLOYEES)
        date = rng.choice(DATES_2017 + DATES_2018)
        db.sql(f"INSERT INTO checkins VALUES ({uid}, '{date}', {rng.randrange(4)})")
    return db


def naive_scan_leak(db: ObliDB, uid: int) -> list[int]:
    """A NON-oblivious engine: read each row, copy matches to an output.

    Returns the block indexes where the attacker saw an output write occur
    — i.e. exactly which (encrypted!) rows belong to the target user.
    """
    table = db.table("checkins").require_flat()
    enclave = db.enclave
    out_region = enclave.fresh_region_name("leaky_out")
    enclave.untrusted.allocate_region(out_region, table.capacity)
    enclave.trace.clear()
    position = 0
    for index in range(table.capacity):
        row = table.read_row(index)
        if row is not None and row[0] == uid and row[1] > "2018-01-01":
            enclave.untrusted.write(out_region, position, enclave.seal(b"row"))
            position += 1
    # The attacker's view: which input reads were followed by output writes.
    leaked = []
    events = enclave.trace.events
    for i, event in enumerate(events[:-1]):
        if event.op == "R" and events[i + 1].op == "W":
            leaked.append(event.index)
    enclave.untrusted.free_region(out_region)
    return leaked


def main() -> None:
    db = build_db(seed=1)

    # --- The attack on a naive engine -------------------------------------
    leaked = naive_scan_leak(db, uid=3172)
    print("NAIVE ENGINE: attacker learns user 3172's check-in rows are at")
    print("  block indexes", leaked)
    print("  (every row is encrypted — the access pattern alone leaked this)\n")

    # --- The same query in ObliDB ------------------------------------------
    result = db.sql(
        "SELECT * FROM checkins WHERE uid = 3172 AND date > '2018-01-01'"
    )
    print(f"ObliDB returns {len(result.rows)} check-ins for user 3172")
    print("leaked plan:", [plan.describe() for plan in result.plans])

    # Different user, different data — identical observable trace, as long
    # as the leakage (sizes + plan) matches.
    def trace_for(seed: int, uid: int):
        fresh = build_db(seed)
        # Pick a result size to compare apples to apples: pad the predicate
        # window until the match count equals the first query's.
        fresh.enclave.trace.clear()
        res = fresh.sql(f"SELECT * FROM checkins WHERE uid = {uid} AND date > '2018-01-01'")
        return (
            len(res.rows),
            canonicalize(fresh.enclave.trace.events, oram_regions_of(fresh.enclave)),
        )

    size_a, trace_a = trace_for(seed=2, uid=3172)
    size_b, trace_b = trace_for(seed=3, uid=4401)
    print(f"\nrun A: uid 3172 on log #2 -> {size_a} rows")
    print(f"run B: uid 4401 on log #3 -> {size_b} rows")
    if size_a == size_b:
        print("equal result sizes -> traces indistinguishable?",
              trace_a.matches(trace_b))
    else:
        print("(different result sizes: size is declared leakage, so traces may differ)")
        print("trace lengths:", trace_a.length, "vs", trace_b.length)


if __name__ == "__main__":
    main()

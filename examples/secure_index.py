#!/usr/bin/env python3
"""A standalone oblivious index: point workloads, integrity, attestation.

Uses the lower-level building blocks directly — the Path ORAM, the
oblivious B+ tree, the revision-number integrity machinery, and the
attestation handshake — for applications that want an oblivious key-value
store rather than a full SQL engine (the setting of the paper's Figure 9
comparison against HIRB and the Oblix/POSUP-style indexes).

Run:  python examples/secure_index.py
"""

import random

from repro.baselines import HIRBMap, PlainIndex
from repro.enclave import (
    AttestationPlatform,
    AttestingClient,
    Enclave,
    IntegrityError,
    attest,
)
from repro.storage import IndexedStorage, Schema, int_column, str_column

ROWS = 500


def main() -> None:
    # --- 1. Attest the enclave before provisioning any data ----------------
    platform = AttestationPlatform()
    client = AttestingClient(platform, expected_code_identity="oblidb-index-v1")
    attest(platform, "oblidb-index-v1", client)
    print("attestation: enclave measurement verified\n")

    # --- 2. Build the oblivious index --------------------------------------
    enclave = Enclave(oblivious_memory_bytes=1 << 22)
    schema = Schema([int_column("key"), str_column("value", 32)])
    index = IndexedStorage(enclave, schema, "key", ROWS + 64, rng=random.Random(3))

    keys = list(range(ROWS))
    random.Random(1).shuffle(keys)
    for key in keys:
        index.insert((key, f"secret-{key:05d}"))
    print(f"loaded {ROWS} records; tree height {index.tree.height}")

    # Point lookups cost O(log^2 N) with a fixed access shape.
    snapshot = enclave.cost.snapshot()
    assert index.point_lookup(137) == [(137, "secret-00137")]
    delta = enclave.cost.delta_since(snapshot)
    print(f"point lookup: {delta.oram_accesses} ORAM accesses, "
          f"{delta.block_ios} block transfers, "
          f"~{delta.modeled_time_ms():.2f} ms modeled\n")

    # Range scan walks the leaf level (leaks only the segment size).
    rows = index.range_lookup(100, 109)
    print("range [100,109]:", [row[0] for row in rows])

    # --- 3. Compare against the Figure 9 baselines -------------------------
    hirb = HIRBMap(capacity=ROWS + 64, rng=random.Random(4), cipher="null")
    mysql = PlainIndex()
    for key in keys:
        hirb.insert(key, f"secret-{key:05d}"[:56])
        mysql.insert(key, f"secret-{key:05d}")

    def per_op(cost_model, fn, ops=20):
        snapshot = cost_model.snapshot()
        fn()
        return cost_model.delta_since(snapshot).modeled_time_ms() / ops

    oblidb_ms = per_op(enclave.cost, lambda: [index.point_lookup(k) for k in range(20)])
    hirb_ms = per_op(hirb.client.cost, lambda: [hirb.get(k) for k in range(20)])
    mysql_ms = per_op(mysql.cost, lambda: [mysql.get(k) for k in range(20)])
    print("\nmodeled ms per point lookup (miniature Figure 9):")
    print(f"  HIRB+vORAM : {hirb_ms:.4f}")
    print(f"  ObliDB     : {oblidb_ms:.4f}  ({hirb_ms / oblidb_ms:.1f}x faster than HIRB)")
    print(f"  MySQL-like : {mysql_ms:.4f}  (no security)")

    # --- 4. Integrity: the malicious OS cannot tamper undetected -----------
    oram_region = index.oram.region_name  # type: ignore[attr-defined]
    honest_block = enclave.untrusted.peek(oram_region, 0)
    enclave.untrusted.tamper(oram_region, 3, honest_block)  # transplant a bucket
    try:
        for probe in range(20):  # touch enough paths to hit the forged bucket
            index.point_lookup(probe)
    except IntegrityError as error:
        print(f"\ntamper detected as expected: {error}")
    else:
        print("\n(tampered bucket not on any probed path this run — "
              "rerun probes reach it with more lookups)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Durability and upgrades: write-ahead logging and Ring ORAM indexes.

Two of the paper's forward-pointers, working together:

* Section 3: "a standard write-ahead log could be generically added to the
  system" — here a financial-ledger database runs with WAL enabled, the
  "machine" is lost, and a fresh enclave recovers the exact state by
  replaying the encrypted log (whose appends leak nothing beyond the write
  count the adversary already sees).

* Section 8: swapping Path ORAM for Ring ORAM "would result in performance
  improvements corresponding to the approximately 1.5x improvement" — the
  recovered database is rebuilt with `oram_kind="ring"` and we measure the
  point-lookup improvement directly.

Run:  python examples/durable_ledger.py
"""

import random

from repro import ObliDB, StorageMethod
from repro.storage import Schema, int_column, str_column

LEDGER_SCHEMA_SQL = (
    "CREATE TABLE ledger (txid INT, account STR(8), amount INT)"
    " CAPACITY 256 METHOD both KEY txid"
)


def main() -> None:
    # --- A ledger with write-ahead logging ---------------------------------
    db = ObliDB(cipher="null", wal=True, seed=21)
    db.sql(LEDGER_SCHEMA_SQL)
    rng = random.Random(7)
    accounts = ["acct-a", "acct-b", "acct-c"]
    for txid in range(40):
        account = rng.choice(accounts)
        amount = rng.randint(-500, 500)
        db.sql(f"INSERT INTO ledger VALUES ({txid}, '{account}', {amount})")
    db.sql("UPDATE ledger SET amount = 0 WHERE txid = 13")  # a reversal
    db.sql("DELETE FROM ledger WHERE txid = 7")  # a purged test entry

    balances = db.sql(
        "SELECT account, SUM(amount) FROM ledger GROUP BY account"
    ).rows
    print("balances before crash:", sorted(balances))
    assert db.wal is not None
    print(f"WAL holds {db.wal.count} sealed statements\n")

    # --- Crash: the enclave is gone; only untrusted memory (the WAL) and
    # --- the committed count survive.  Recover into a fresh database. ------
    recovered = ObliDB(cipher="null", seed=22)
    replayed = recovered.recover_from(db.wal)
    recovered_balances = recovered.sql(
        "SELECT account, SUM(amount) FROM ledger GROUP BY account"
    ).rows
    print(f"replayed {replayed} statements into a fresh enclave")
    print("balances after recovery:", sorted(recovered_balances))
    assert sorted(balances) == sorted(recovered_balances)

    # --- Upgrade: rebuild the index over Ring ORAM -------------------------
    rows = recovered.sql("SELECT * FROM ledger").rows
    schema = Schema([int_column("txid"), str_column("account", 8), int_column("amount")])

    timings = {}
    for kind, slot_blocks in (("path", 4), ("ring", 1)):
        fresh = ObliDB(cipher="null", seed=23)
        table = fresh.create_table(
            "ledger", schema, 256,
            method=StorageMethod.INDEXED, key_column="txid", oram_kind=kind,
        )
        for row in rows:
            table.insert(row)
        snapshot = fresh.cost_snapshot()
        for txid in range(0, 40, 2):
            fresh.point_lookup("ledger", txid)
        delta = fresh.cost_delta(snapshot)
        # Path IOs move 4-slot buckets; Ring IOs move single slots.
        timings[kind] = delta.block_ios * slot_blocks

    improvement = timings["path"] / timings["ring"]
    print(f"\npoint lookups, slot-equivalents moved: path={timings['path']}, "
          f"ring={timings['ring']}  ->  Ring ORAM is {improvement:.2f}x lighter")
    print("(the paper's Section 8 estimate: approximately 1.5x)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: an oblivious database in a few lines.

Creates a table stored both flat and indexed, runs point, range, aggregate,
and write queries through the SQL interface, and shows the two things that
make ObliDB different from an ordinary engine:

* the *physical plan* each query leaked (the only query-dependent
  information an OS-level attacker learns), and
* the *cost counters* — how many encrypted blocks crossed the enclave
  boundary to keep the access pattern oblivious.

Run:  python examples/quickstart.py
"""

from repro import ObliDB


def main() -> None:
    db = ObliDB(seed=7)  # a fresh simulated enclave with real encryption

    db.sql(
        "CREATE TABLE employees (id INT, name STR(16), dept STR(8), salary INT)"
        " CAPACITY 128 METHOD both KEY id"
    )
    print("created table:", db.table_names())

    people = [
        (1, "ada", "eng", 1200),
        (2, "grace", "eng", 1400),
        (3, "edsger", "research", 1100),
        (4, "barbara", "eng", 1500),
        (5, "donald", "research", 1300),
        (6, "leslie", "ops", 1000),
    ]
    for row in people:
        db.sql(
            f"INSERT INTO employees VALUES ({row[0]}, '{row[1]}', '{row[2]}', {row[3]})"
        )

    # Point query: served by the oblivious B+ tree in O(log^2 N) accesses.
    result = db.sql("SELECT * FROM employees WHERE id = 4")
    print("\npoint query  ->", result.rows)
    print("leaked plan  ->", [plan.describe() for plan in result.plans])

    # Range query with a residual predicate on another column.
    result = db.sql(
        "SELECT name, salary FROM employees WHERE id >= 2 AND id <= 5 AND dept = 'eng'"
    )
    print("\nrange query  ->", result.rows)

    # Fused select + aggregate: no intermediate table, no size leakage.
    result = db.sql("SELECT COUNT(*), AVG(salary) FROM employees WHERE dept = 'eng'")
    print("\naggregate    ->", result.rows)
    print("blocks moved ->", result.cost["untrusted_reads"], "reads,",
          result.cost["untrusted_writes"], "writes")

    # Grouped aggregation.
    result = db.sql("SELECT dept, SUM(salary) FROM employees GROUP BY dept")
    print("\ngroup by     ->", sorted(result.rows))

    # Oblivious writes: a full uniform pass over the flat copy plus a
    # padded index update — the adversary can't tell what changed.
    db.sql("UPDATE employees SET salary = 1600 WHERE id = 1")
    db.sql("DELETE FROM employees WHERE dept = 'ops'")
    result = db.sql("SELECT COUNT(*) FROM employees")
    print("\nafter update+delete, rows =", result.scalar())


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Padding mode for size-sensitive data: a medical-records scenario.

Section 2.3 of the paper: sometimes even *result sizes* are sensitive — if
a hospital's database answers a query about a rare diagnosis, the count of
returned rows itself reveals the incidence.  Padding mode pads every
intermediate and final result to a public bound and disables the query
planner, so an observer learns only the logical plan and the bound.

This example runs the same diagnosis queries with and without padding and
shows (a) answers are unchanged, (b) in padding mode the leaked plan sizes
are constants independent of the true result, and (c) the cost of that
protection.

Run:  python examples/padded_medical.py
"""

import random

from repro import ObliDB, PaddingConfig
from repro.storage import Schema, int_column, str_column

SCHEMA_SQL = (
    "CREATE TABLE patients (pid INT, diagnosis STR(12), age INT, ward STR(4))"
    " CAPACITY 256"
)

DIAGNOSES = ["flu"] * 60 + ["diabetes"] * 25 + ["rare_zx"] * 3  # skewed incidence


def build(padding: PaddingConfig | None) -> ObliDB:
    db = ObliDB(cipher="null", padding=padding, seed=11)
    db.sql(SCHEMA_SQL)
    rng = random.Random(5)
    table = db.table("patients")
    for pid, diagnosis in enumerate(DIAGNOSES):
        table.insert(
            (pid, diagnosis, rng.randint(20, 90), f"W{rng.randint(1, 4)}"),
            fast=True,
        )
    return db


def leaked_output_sizes(result) -> list[int]:
    return [plan.sizes["output"] for plan in result.plans if "output" in plan.sizes]


def main() -> None:
    plain = build(None)
    padded = build(PaddingConfig(pad_rows=100, pad_groups=16))

    for diagnosis in ("flu", "rare_zx"):
        sql = f"SELECT * FROM patients WHERE diagnosis = '{diagnosis}'"
        plain_result = plain.sql(sql)
        padded_result = padded.sql(sql)
        assert sorted(plain_result.rows) == sorted(padded_result.rows)
        print(f"{diagnosis:10s}: {len(plain_result.rows):3d} real rows | "
              f"leaked output size: plain={leaked_output_sizes(plain_result)} "
              f"padded={leaked_output_sizes(padded_result)}")

    print("\n-> in padding mode both queries leak the SAME output size (100),")
    print("   hiding that 'rare_zx' is rare; normal mode leaks 60 vs 3.\n")

    # Grouped aggregation: group count also padded.
    sql = "SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis"
    plain_result = plain.sql(sql)
    padded_result = padded.sql(sql)
    print("incidence histogram (identical answers):", sorted(padded_result.rows))

    plain_cost = plain.sql(sql).cost["untrusted_reads"]
    padded_cost = padded.sql(sql).cost["untrusted_reads"]
    print(f"\npadding tax on the aggregate: {padded_cost / plain_cost:.2f}x "
          f"untrusted reads ({plain_cost} -> {padded_cost})")


if __name__ == "__main__":
    main()
